"""Most-probable-failure-point (FORM) estimation of cell failures.

The analytical alternative to Monte Carlo that the paper's reference
[3] builds on: in the 6-dimensional space of normalised threshold
deltas ``z_i = dVt_i / sigma_i`` the failure region of a mechanism is
approximately a half-space; the *most probable failure point* (MPFP) is
the point of the failure boundary closest to the origin, and the
first-order reliability estimate is

    P_fail ~ Phi(-beta),       beta = ||z_MPFP||

The MPFP search here is a simple constrained minimisation: walk down
the margin gradient (estimated by finite differences on the vectorised
solvers) until the failure boundary, then polish with a few
projected-gradient steps.  FORM is exact for a linear boundary and a
good few-percent approximation for the mildly curved SRAM margins; the
test suite compares it against importance-sampled Monte Carlo.

Beyond validation, the MPFP itself is diagnostic: its components say
*which transistors* a mechanism fails through (e.g. read failures live
along +dVt(NR)/-dVt(AXR)... the vector is returned for exactly that
kind of analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sp_stats

from repro.failures.criteria import FailureCriteria
from repro.observability.metrics import incr
from repro.sram.cell import TRANSISTORS, CellGeometry, SixTCell, cell_sigma_vt
from repro.sram.metrics import OperatingConditions, compute_cell_metrics
from repro.sram.solver import (
    solve_access_current,
    solve_read_node,
    solve_read_trip,
    solve_write_time,
)
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters

#: Finite-difference step in normalised-sigma units.
_FD_STEP = 0.05


@dataclass(frozen=True)
class MpfpResult:
    """A FORM estimate for one mechanism at one operating point.

    Attributes:
        beta: distance of the MPFP from the origin [sigmas].
        probability: the FORM estimate Phi(-beta).
        z: the MPFP in normalised coordinates, keyed by transistor.
        converged: the search ended on the failure boundary.
    """

    beta: float
    probability: float
    z: dict[str, float]
    converged: bool

    def dominant_transistors(self, count: int = 2) -> list[str]:
        """The transistors with the largest |z| components."""
        ranked = sorted(self.z, key=lambda name: -abs(self.z[name]))
        return ranked[:count]


class MpfpEstimator:
    """FORM failure estimation on the vectorised cell metrics.

    Args:
        tech: technology card.
        criteria: calibrated failure criteria.
        geometry: cell geometry.
        conditions: operating conditions.
    """

    def __init__(
        self,
        tech: TechnologyParameters,
        criteria: FailureCriteria,
        geometry: CellGeometry | None = None,
        conditions: OperatingConditions | None = None,
    ) -> None:
        self.tech = tech
        self.criteria = criteria
        self.geometry = geometry if geometry is not None else CellGeometry()
        self.conditions = (
            conditions
            if conditions is not None
            else OperatingConditions.nominal(tech)
        )
        self._sigmas = cell_sigma_vt(tech, self.geometry)

    # ------------------------------------------------------------------
    def _margin_function(
        self, mechanism: str, corner: ProcessCorner
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Margin (positive = pass) as a function of z batches (k, 6)."""
        criteria = self.criteria

        if mechanism == "hold":
            raise KeyError(
                "FORM does not apply to the hold mechanism: its limit "
                "state is the cliff-like loss of bistability (the margin "
                "is flat until the flip), which a first-order boundary "
                "cannot represent — use the importance-sampled analyzer."
            )
        if mechanism not in ("read", "write", "access"):
            raise KeyError(f"unknown mechanism {mechanism!r}")

        def margin(z: np.ndarray) -> np.ndarray:
            """Normalised margin: O(1) positive when passing."""
            z = np.atleast_2d(z)
            dvt = {
                name: z[:, i] * self._sigmas[name]
                for i, name in enumerate(TRANSISTORS)
            }
            cell = SixTCell(self.tech, self.geometry, corner, dvt)
            metrics = compute_cell_metrics(cell, self.conditions)
            if mechanism == "read":
                return (
                    metrics.read_margin - criteria.delta_read
                ) / self.conditions.vdd
            if mechanism == "write":
                t_write = np.where(
                    np.isfinite(metrics.t_write), metrics.t_write, 1e6
                )
                return (
                    criteria.t_write_max - t_write
                ) / criteria.t_write_max
            return (
                metrics.i_access - criteria.i_access_min
            ) / criteria.i_access_min

        return margin

    def _light_margins(
        self, corner: ProcessCorner, z: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Read/write/access margins for a z batch, skipping the hold
        fixed point.

        :func:`~repro.sram.metrics.compute_cell_metrics` spends most of
        its fixed cost in the standby Gauss–Seidel iteration, which the
        three FORM-able mechanisms never read — so the MPFP search runs
        on just the active-mode solvers (one vectorised batch for all
        mechanisms at once), an order of magnitude cheaper per
        iteration.  Margins are normalised exactly like
        :meth:`_margin_function`.
        """
        z = np.atleast_2d(z)
        dvt = {
            name: z[:, i] * self._sigmas[name]
            for i, name in enumerate(TRANSISTORS)
        }
        cell = SixTCell(self.tech, self.geometry, corner, dvt)
        vdd = self.conditions.vdd
        vb = self.conditions.vbody_n
        incr("solver.calls", z.shape[0])
        incr("solver.batches")
        read_margin = solve_read_trip(cell, vdd, vb) - solve_read_node(
            cell, vdd, vb
        )
        t_write = solve_write_time(cell, vdd, vb)
        t_write = np.where(np.isfinite(t_write), t_write, 1e6)
        i_access = solve_access_current(cell, vdd, vb)
        criteria = self.criteria
        return {
            "read": (read_margin - criteria.delta_read) / vdd,
            "write": (
                criteria.t_write_max - t_write
            ) / criteria.t_write_max,
            "access": (
                i_access - criteria.i_access_min
            ) / criteria.i_access_min,
        }

    def direction_seeds(
        self,
        corner: ProcessCorner = ProcessCorner(0.0),
        mechanisms: tuple[str, ...] = ("read", "write", "access"),
        max_iterations: int = 10,
        tolerance: float = 5e-3,
    ) -> dict[str, np.ndarray]:
        """Approximate MPFP z-vectors for seeding importance sampling.

        The same HL-RF iteration as :meth:`find_mpfp`, but run for all
        requested mechanisms *simultaneously* on the light (hold-free)
        margins — every iteration evaluates one batch of
        ``len(mechanisms) * 13`` cells through the vectorised active-
        mode solvers — and stopped early: a proposal seed only needs
        the failure direction to a few percent, not a polished
        reliability index.  Mechanisms whose gradient degenerates (or
        that FORM cannot represent, e.g. ``hold``) are simply absent
        from the result; callers fall back to cross-entropy shifts.
        """
        wanted = [m for m in mechanisms if m in ("read", "write", "access")]
        if not wanted:
            return {}
        d = len(TRANSISTORS)
        points = {m: np.zeros(d) for m in wanted}
        active = set(wanted)
        steps = np.zeros((2 * d, d))
        for i in range(d):
            steps[2 * i, i] = _FD_STEP
            steps[2 * i + 1, i] = -_FD_STEP
        for _ in range(max_iterations):
            if not active:
                break
            batch_mechs = sorted(active)
            batch = np.vstack(
                [
                    np.vstack([points[m], points[m] + steps])
                    for m in batch_mechs
                ]
            )
            values = self._light_margins(corner, batch)
            for j, m in enumerate(batch_mechs):
                rows = values[m][j * (2 * d + 1): (j + 1) * (2 * d + 1)]
                g0 = float(rows[0])
                gradient = (rows[1::2] - rows[2::2]) / (2 * _FD_STEP)
                norm2 = float(np.dot(gradient, gradient))
                if norm2 < 1e-24:
                    active.discard(m)
                    continue
                z_new = (
                    (np.dot(gradient, points[m]) - g0) * gradient / norm2
                )
                moved = float(np.linalg.norm(z_new - points[m]))
                points[m] = z_new
                if moved < tolerance:
                    active.discard(m)
        return {
            m: z for m, z in points.items()
            if np.linalg.norm(z) > 1e-6 and np.all(np.isfinite(z))
        }

    def find_mpfp(
        self,
        mechanism: str,
        corner: ProcessCorner = ProcessCorner(0.0),
        max_iterations: int = 40,
        tolerance: float = 1e-3,
    ) -> MpfpResult:
        """Locate the MPFP of ``mechanism`` at ``corner``.

        The search is the classic HL-RF style iteration: estimate the
        margin gradient by central differences (batched through the
        vectorised solvers — one batch of 13 cell evaluations per
        step), step to the linearised boundary, and repeat until the
        point stops moving.
        """
        margin = self._margin_function(mechanism, corner)
        d = len(TRANSISTORS)
        z = np.zeros(d)
        converged = False
        for _ in range(max_iterations):
            # Batch: the point itself plus +/- steps per dimension.
            batch = [z]
            for i in range(d):
                step = np.zeros(d)
                step[i] = _FD_STEP
                batch.append(z + step)
                batch.append(z - step)
            values = margin(np.array(batch))
            g0 = float(values[0])
            gradient = (values[1::2] - values[2::2]) / (2 * _FD_STEP)
            norm2 = float(np.dot(gradient, gradient))
            if norm2 < 1e-24:
                break
            # HL-RF update: project onto the linearised limit state.
            z_new = (np.dot(gradient, z) - g0) * gradient / norm2
            if np.linalg.norm(z_new - z) < tolerance:
                z = z_new
                converged = True
                break
            z = z_new
        beta = float(np.linalg.norm(z))
        # Sign: if the origin itself fails, report beta <= 0 (P >= 0.5).
        g_origin = float(margin(np.zeros((1, d)))[0])
        if g_origin < 0:
            beta = -beta
        return MpfpResult(
            beta=beta,
            probability=float(sp_stats.norm.sf(beta)),
            z={name: float(z[i]) for i, name in enumerate(TRANSISTORS)},
            converged=converged,
        )
