"""Parametric failure analysis (the paper's Section II).

* :mod:`repro.failures.criteria` — the pass/fail thresholds on the static
  cell metrics, and their calibration so that the four mechanisms have
  equal probability at the nominal/ZBB point (the paper's stated cell
  sizing);
* :mod:`repro.failures.analysis` — Monte-Carlo (with sigma-scaled
  importance sampling) estimation of per-mechanism cell failure
  probabilities at any corner and bias;
* :mod:`repro.failures.memory` — cell -> column -> memory failure
  probability with column redundancy, and parametric yield over the
  inter-die distribution.
"""

from repro.failures.analysis import CellFailureAnalyzer, FailureProbabilities
from repro.failures.criteria import FailureCriteria, calibrate_criteria
from repro.failures.mpfp import MpfpEstimator, MpfpResult
from repro.failures.memory import (
    column_failure_probability,
    memory_failure_probability,
    parametric_yield,
)

__all__ = [
    "FailureCriteria",
    "calibrate_criteria",
    "CellFailureAnalyzer",
    "FailureProbabilities",
    "column_failure_probability",
    "memory_failure_probability",
    "parametric_yield",
    "MpfpEstimator",
    "MpfpResult",
]
