"""Failure criteria on the static cell metrics, and their calibration.

A cell *fails* a mechanism when the corresponding margin falls below a
threshold:

* read:   ``v_trip_read - v_read     < delta_read``
* write:  ``t_write                  > t_write_max``
* access: ``i_access                 < i_access_min``
* hold:   ``(v_hold_one - v_hold_zero) / hold_rail < hold_fraction_min``

The deltas absorb everything the static model abstracts away (dynamic
disturb slack, sense-amplifier offset and timing, retention dwell): they
are the design-phase knobs.  Following the caption of the paper's
Fig. 2(b) — "the cell is sized to have equal probabilities for different
failure events at ZBB" — :func:`calibrate_criteria` picks each threshold
as the ``target``-quantile of the corresponding margin distribution at
the nominal corner with zero body/source bias, which makes all four
mechanisms hit exactly the target probability there.

This module deliberately has no dependency on the rest of
:mod:`repro.failures` so that :mod:`repro.sram.array` can import it
without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.cell import SixTCell
from repro.sram.metrics import CellMetrics, OperatingConditions, compute_cell_metrics
from repro.stats.montecarlo import weighted_quantile
from repro.stats.sampling import importance_sample_dvt
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters


@dataclass(frozen=True)
class FailureCriteria:
    """Pass/fail thresholds for the four parametric failure mechanisms."""

    #: Minimum read margin V_TRIPRD - V_READ [V].
    delta_read: float
    #: Maximum write time [s] (wordline pulse budget).
    t_write_max: float
    #: Minimum bitline discharge current [A].
    i_access_min: float
    #: Minimum retained differential as a fraction of the standby rail.
    hold_fraction_min: float

    def read_fails(self, metrics: CellMetrics) -> np.ndarray:
        """Boolean array: read failure per cell."""
        return metrics.read_margin < self.delta_read

    def write_fails(self, metrics: CellMetrics) -> np.ndarray:
        """Boolean array: write failure per cell."""
        return metrics.t_write > self.t_write_max

    def access_fails(self, metrics: CellMetrics) -> np.ndarray:
        """Boolean array: access failure per cell."""
        return metrics.i_access < self.i_access_min

    def hold_fails(self, metrics: CellMetrics) -> np.ndarray:
        """Boolean array: hold failure per cell."""
        return metrics.hold_margin_fraction < self.hold_fraction_min

    def any_fails(self, metrics: CellMetrics) -> np.ndarray:
        """Boolean array: cell fails *any* mechanism."""
        return (
            self.read_fails(metrics)
            | self.write_fails(metrics)
            | self.access_fails(metrics)
            | self.hold_fails(metrics)
        )


def calibrate_criteria(
    tech: TechnologyParameters,
    geometry=None,
    conditions: OperatingConditions | None = None,
    target: float = 1e-7,
    n_samples: int = 200_000,
    seed: int = 2006,
    scale: float = 2.0,
    hold_target: float | None = None,
) -> FailureCriteria:
    """Choose thresholds that equalise the four failure probabilities.

    At the nominal corner with zero body and source bias, each threshold
    is set to the ``target``-quantile of its margin distribution, so
    every mechanism fails with probability ``target`` there (the paper's
    equal-probability sizing).  The quantiles come from sigma-scaled
    importance sampling with likelihood-ratio weights, which resolves
    deep tails (the default 1e-7 keeps a redundancy-repaired 256KB
    memory essentially failure-free at the nominal corner, matching the
    paper's "negligible" region-B failure probability).

    Args:
        tech: technology card.
        geometry: cell geometry (default :class:`CellGeometry`).
        conditions: bias conditions; defaults to
            :meth:`OperatingConditions.nominal`.
        target: per-mechanism failure probability at the ZBB/nominal
            point.
        n_samples: weighted sample count.
        seed: RNG seed (deterministic calibration).
        scale: importance-sampling sigma inflation.
        hold_target: separate target for the hold mechanism; defaults to
            ``max(target, 1e-4)``.  The hold-margin distribution is
            bimodal — a *droop* branch (leakage eats into the retained
            differential) separated by a dynamically unreachable gap
            from the *flipped* branch — so quantiles deeper than the
            flip probability would jump across the gap and turn the
            criterion into "fail only if fully flipped", erasing the
            leakage-driven left side of the paper's hold bathtub.  The
            floor keeps the threshold on the droop branch.
    """
    from repro.sram.cell import CellGeometry  # local: keep module deps light

    if not 0.0 < target < 0.5:
        raise ValueError(f"target must be in (0, 0.5), got {target}")
    if hold_target is None:
        hold_target = max(target, 1e-4)
    if not 0.0 < hold_target < 0.5:
        raise ValueError(f"hold_target must be in (0, 0.5), got {hold_target}")
    geometry = geometry if geometry is not None else CellGeometry()
    conditions = (
        conditions if conditions is not None else OperatingConditions.nominal(tech)
    )
    rng = np.random.default_rng(seed)
    sample = importance_sample_dvt(tech, geometry, rng, n_samples, scale)
    cell = SixTCell(tech, geometry, ProcessCorner(0.0), sample.dvt)
    metrics = compute_cell_metrics(cell, conditions)
    w = sample.weights
    # t_write has +inf entries (static write failures); cap them so the
    # upper weighted quantile stays finite and well-ordered.
    t_write = np.where(
        np.isfinite(metrics.t_write), metrics.t_write, 1e6
    )
    return FailureCriteria(
        delta_read=weighted_quantile(metrics.read_margin, w, target),
        t_write_max=weighted_quantile(t_write, w, 1.0 - target),
        i_access_min=weighted_quantile(metrics.i_access, w, target),
        hold_fraction_min=weighted_quantile(
            metrics.hold_margin_fraction, w, hold_target
        ),
    )
