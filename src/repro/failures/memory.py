"""Cell -> column -> memory failure probability with redundancy.

The paper's yield chain (Section II, reference [3]): a column is faulty
if *any* of its cells fails; a memory chip is faulty if the number of
faulty columns exceeds the available redundant columns; the parametric
yield is the fraction of dies (over the inter-die distribution) whose
memory is not faulty.

Numerics: cell failure probabilities are tiny, so ``1 - (1-p)^n`` is
evaluated via ``expm1``/``log1p`` and the binomial survival function via
``scipy.stats.binom`` which is stable in the tails.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from scipy import stats as sp_stats

if TYPE_CHECKING:  # avoid a circular import with repro.sram.array
    from repro.sram.array import ArrayOrganization


def column_failure_probability(
    p_cell: float | np.ndarray, rows: int
) -> float | np.ndarray:
    """P(column faulty) = 1 - (1 - p_cell)^rows, computed stably."""
    if rows <= 0:
        raise ValueError(f"rows must be positive, got {rows}")
    p = np.clip(np.asarray(p_cell, dtype=float), 0.0, 1.0)
    result = -np.expm1(rows * np.log1p(-np.minimum(p, 1.0 - 1e-16)))
    result = np.where(p >= 1.0, 1.0, result)
    if np.isscalar(p_cell):
        return float(result)
    return result


def memory_failure_probability(
    p_cell: float, organization: "ArrayOrganization"
) -> float:
    """P(memory chip faulty) given per-cell failure probability.

    The chip fails when more than ``redundant_columns`` of its
    ``columns`` data columns are faulty (faulty columns are replaced by
    spares one-for-one).
    """
    p_col = float(column_failure_probability(p_cell, organization.rows))
    return float(
        sp_stats.binom.sf(
            organization.redundant_columns, organization.columns, p_col
        )
    )


def parametric_yield(
    p_cell_at_corner,
    organization: "ArrayOrganization",
    distribution,
    order: int = 15,
) -> float:
    """Yield over the inter-die distribution (paper Eq. 1).

    Args:
        p_cell_at_corner: callable ``ProcessCorner -> float`` giving the
            per-cell (union) failure probability at a corner — after any
            repair policy under evaluation has chosen its bias.
        organization: the memory organisation.
        distribution: :class:`InterDieDistribution`.
        order: quadrature order.
    """
    from repro.stats.integration import expect_over_corners

    def pass_probability(corner) -> float:
        p_cell = float(p_cell_at_corner(corner))
        return 1.0 - memory_failure_probability(p_cell, organization)

    return expect_over_corners(distribution, pass_probability, order)
