"""Checkpoint/resume for long grid builds and lot simulations.

A :class:`CheckpointStore` persists *partially completed* index->result
maps, keyed by the same kind of content fingerprint the result cache
uses — so a killed fig10 sweep or lot-scale Monte-Carlo campaign
re-run with the same parameters resumes from the last flush instead of
starting over, and a re-run with *different* parameters can never pick
up stale cells (the fingerprint differs, the checkpoint is ignored).

The store piggybacks on :mod:`repro.durable`: every checkpoint file is
an atomic, checksummed envelope, and a corrupt or truncated checkpoint
(e.g. the process died *during* a flush — impossible under the atomic
rename, but a torn disk is not) is quarantined and treated as absent,
never raised.

Because every task in this stack derives its randomness from its own
key (die seed, (corner, bias) seed), computing only the missing indices
yields bit-identical results to a fresh full run — resume is exact,
not approximate.  :meth:`CheckpointStore.resumable_map` packages the
whole protocol: load, compute missing in flush-sized slices, clear on
completion.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Sequence

from repro import cancellation, durable
from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("checkpoint")

#: Schema tag written into every checkpoint envelope.
_FORMAT = 1


class CheckpointStore:
    """Fingerprint-keyed partial-result files under one directory.

    Args:
        directory: where checkpoint files live (created if missing).
        every: flush cadence — completed results are persisted after
            every ``every`` new completions (and once at the end of
            each :meth:`resumable_map` slice).
    """

    def __init__(self, directory: str | pathlib.Path, every: int = 8) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.directory = pathlib.Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"checkpoint dir {self.directory} exists and is not a "
                "directory"
            ) from None
        self.every = int(every)

    def path(self, kind: str, fingerprint: str) -> pathlib.Path:
        """The checkpoint file for one (kind, fingerprint) build."""
        return self.directory / f"{kind}-{fingerprint}.ckpt.json"

    def load(self, kind: str, fingerprint: str) -> dict[int, object]:
        """Completed ``index -> encoded-result`` entries, or ``{}``.

        A corrupt, truncated, or wrong-fingerprint file is quarantined
        (``<name>.corrupt-N``) and reported as empty — a bad checkpoint
        costs a recompute, never an exception or a wrong result.
        """
        path = self.path(kind, fingerprint)
        if not path.exists():
            return {}
        try:
            payload = durable.read_sealed(path)
        except durable.CorruptStateError as exc:
            incr("checkpoint.quarantined")
            _log.warning(
                "checkpoint.corrupt", path=str(path), reason=str(exc)
            )
            durable.quarantine(path)
            return {}
        if (
            payload.get("format") != _FORMAT
            or payload.get("kind") != kind
            or payload.get("fingerprint") != fingerprint
            or not isinstance(payload.get("completed"), dict)
        ):
            incr("checkpoint.quarantined")
            _log.warning("checkpoint.mismatch", path=str(path))
            durable.quarantine(path)
            return {}
        completed = {
            int(index): value
            for index, value in payload["completed"].items()
        }
        incr("checkpoint.resumed_cells", len(completed))
        _log.info(
            "checkpoint.resumed",
            kind=kind,
            path=str(path),
            completed=len(completed),
        )
        return completed

    def save(
        self, kind: str, fingerprint: str, completed: dict[int, object]
    ) -> pathlib.Path:
        """Atomically persist the completed map (full rewrite)."""
        incr("checkpoint.flushes")
        return durable.write_sealed(
            self.path(kind, fingerprint),
            {
                "format": _FORMAT,
                "kind": kind,
                "fingerprint": fingerprint,
                "completed": {str(i): v for i, v in completed.items()},
            },
        )

    def clear(self, kind: str, fingerprint: str) -> None:
        """Remove the checkpoint (the build it served is complete)."""
        try:
            self.path(kind, fingerprint).unlink()
        except FileNotFoundError:
            pass

    def resumable_map(
        self,
        kind: str,
        fingerprint: str,
        n: int,
        compute: Callable[[Sequence[int]], Sequence[object]],
        encode: Callable[[object], object],
        decode: Callable[[object], object],
    ) -> list:
        """Compute ``n`` indexed results with periodic flushes.

        Args:
            kind: artifact family (namespaces the checkpoint file).
            fingerprint: content fingerprint of the full build payload.
            n: total result count.
            compute: maps a list of missing indices to their results
                (the caller fans this out however it likes); must be a
                pure function of the indices for resume to be exact.
            encode / decode: JSON-serialisable round-trip for one
                result.

        Completed entries from a previous run are decoded instead of
        recomputed; the rest are computed in slices of :attr:`every`
        with a flush after each slice; the checkpoint is cleared once
        every index is present.

        Slice boundaries are the build's cancellation safe points: the
        ambient :mod:`repro.cancellation` token (if any) is polled
        before each slice, so a cancelled or deadline-expired job stops
        with its last completed slice already flushed — resuming the
        same fingerprint later recomputes nothing that was persisted.
        """
        completed = self.load(kind, fingerprint)
        results: list = [None] * n
        for index, raw in completed.items():
            if 0 <= index < n:
                results[index] = decode(raw)
        missing = [i for i in range(n) if results[i] is None]
        for start in range(0, len(missing), self.every):
            cancellation.check_active()
            chunk = missing[start : start + self.every]
            for index, value in zip(chunk, compute(chunk)):
                results[index] = value
                completed[index] = encode(value)
            incr("checkpoint.completed_cells", len(chunk))
            self.save(kind, fingerprint, completed)
        self.clear(kind, fingerprint)
        return results
