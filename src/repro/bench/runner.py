"""Measure one workload under telemetry, best-of-K.

One :func:`run_workload` call produces one history record: it prepares
the workload's state (untimed), then runs the body ``repeats`` times,
each repeat inside a fresh telemetry collection scope, and keeps

* every repeat's wall-clock (plus the derived best and median — the
  comparator consumes the median, the noise-robust statistic; the best
  approximates the machine's unloaded capability),
* the full ``repro.telemetry/1`` snapshot of the *fastest* repeat
  (least scheduler interference, and the semantic counters are
  identical across repeats by the fixed-seed contract),
* an environment fingerprint (git SHA, interpreter, numpy, platform,
  core count, configured workers) so the record stays interpretable
  long after the machine or checkout has moved on.

The runner saves and restores the process-wide observability switch,
so benchmarking never leaks collection state into the caller.
"""

from __future__ import annotations

import statistics
import time
import uuid

from repro import observability
from repro.bench.registry import BenchProfile, Workload

#: Record schema tag, bumped only on breaking shape changes.
RECORD_SCHEMA = "repro.bench/1"


def run_workload(
    workload: Workload,
    profile: BenchProfile,
    repeats: int = 3,
) -> dict:
    """Measure ``workload`` at ``profile`` sizing; return the record.

    Args:
        workload: registry entry to measure.
        profile: sizing (``QUICK``/``FULL`` or a custom
            :class:`~repro.bench.registry.BenchProfile`).
        repeats: timed repetitions (best-of-K; K >= 1).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    # Every measurement run gets a correlation id: stamped on the
    # record's env fingerprint (and on any log events the workload
    # emits), so a BENCH_*.json line can be joined to its uploaded
    # telemetry/trace artifacts after the fact.
    run_id = f"bench-{workload.name}-{uuid.uuid4().hex[:12]}"
    was_enabled = observability.enabled()
    state = workload.prepare(profile) if workload.prepare else None
    wall: list[float] = []
    telemetry: dict = {}
    try:
        with observability.RunContext(run_id):
            for _ in range(repeats):
                observability.reset()
                observability.enable()
                start = time.perf_counter()
                workload.run(profile, state)
                elapsed = time.perf_counter() - start
                if not wall or elapsed < min(wall):
                    telemetry = observability.snapshot()
                wall.append(elapsed)
    finally:
        observability.reset()
        if not was_enabled:
            observability.disable()
        if workload.cleanup:
            workload.cleanup(state)
    telemetry["run_id"] = run_id
    return {
        "schema": RECORD_SCHEMA,
        "workload": workload.name,
        "profile": profile.name,
        "timestamp": time.time(),
        "repeats": repeats,
        "wall_seconds": [round(s, 6) for s in wall],
        "best_seconds": round(min(wall), 6),
        "median_seconds": round(statistics.median(wall), 6),
        "telemetry": telemetry,
        "environment": {
            **observability.environment_fingerprint(),
            "workers": profile.workers,
            "run_id": run_id,
        },
    }
