"""Noise-aware regression detection over the stored history.

Two independent checks per workload, combined in :func:`compare_workload`:

1. **Wall-clock band.**  The latest record's ``median_seconds`` (the
   median of its best-of-K repeats — robust to one preempted repeat)
   is compared against the *baseline median*: the median of the
   previous ``window`` records' medians.  Median-of-medians means a
   single anomalously slow or fast historical record cannot move the
   baseline, and the relative ``tolerance`` band absorbs machine-level
   noise.  Only ``current > baseline * (1 + tolerance)`` is a
   regression; getting faster is reported, never failed.

2. **Telemetry gates.**  The workload's semantic assertions evaluated
   on the latest record — counter gates (a warm-cache run must show
   ``cache.misses == 0``) and statistical-health gates over histogram
   summaries (the ``mc_kernels`` importance-sampling ESS fraction must
   stay above its floor).  These catch the regressions wall-clock
   can't: a cache silently disabled, or a proposal whose weights have
   collapsed, is a regression even on a day the machine happens to be
   fast.

A workload with a single record has no baseline yet: gates still run,
the wall-clock check reports ``no-baseline`` and passes — so the very
first ``run && compare`` on a clean checkout succeeds and *establishes*
the baseline for every run after it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.bench import history
from repro.bench.registry import WORKLOADS

#: Default relative tolerance band (20 %) on the baseline median.
DEFAULT_TOLERANCE = 0.20

#: Default number of prior records the baseline median is taken over.
DEFAULT_WINDOW = 5

#: Verdicts that make ``repro.bench compare`` exit non-zero.
FAILING = ("regression", "gate-failed", "no-data")


@dataclass
class CompareResult:
    """Verdict for one workload."""

    workload: str
    status: str  # ok | improved | regression | gate-failed | no-baseline | no-data
    current_median: float | None = None
    baseline_median: float | None = None
    ratio: float | None = None
    messages: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def describe(self) -> str:
        """One human-readable verdict line."""
        parts = [f"{self.workload}: {self.status}"]
        if self.current_median is not None and self.baseline_median is not None:
            parts.append(
                f"(median {self.current_median:.3f}s vs baseline "
                f"{self.baseline_median:.3f}s, x{self.ratio:.2f})"
            )
        elif self.current_median is not None:
            parts.append(f"(median {self.current_median:.3f}s)")
        line = " ".join(parts)
        for message in self.messages:
            line += f"\n    {message}"
        return line


def compare_records(
    records: list[dict],
    gates=(),
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    workload: str = "?",
) -> CompareResult:
    """Judge the latest of ``records`` against its predecessors."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not records:
        return CompareResult(
            workload,
            "no-data",
            messages=["no stored records — run `python -m repro.bench run`"],
        )
    current = records[-1]
    result = CompareResult(workload, "ok", current_median=current["median_seconds"])

    metrics = current.get("telemetry", {}).get("metrics", {})
    for gate in gates:
        failure = gate.check(metrics)
        if failure is not None:
            result.status = "gate-failed"
            result.messages.append(failure)

    # Baselines never mix sizings: a quick record must not be judged
    # against full-profile history (or vice versa).
    prior = [
        r for r in records[:-1] if r.get("profile") == current.get("profile")
    ][-window:]
    if not prior:
        if result.status == "ok":
            result.status = "no-baseline"
            result.messages.append(
                "first record at this profile — baseline established"
            )
        return result
    result.baseline_median = statistics.median(
        r["median_seconds"] for r in prior
    )
    result.ratio = (
        result.current_median / result.baseline_median
        if result.baseline_median > 0
        else float("inf")
    )
    if result.status == "gate-failed":
        return result
    if result.ratio > 1.0 + tolerance:
        result.status = "regression"
        result.messages.append(
            f"median exceeded the ±{100 * tolerance:.0f}% band over the "
            f"last {len(prior)} record(s)"
        )
    elif result.ratio < 1.0 - tolerance:
        result.status = "improved"
    return result


def compare_all(
    root,
    workloads: list[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
) -> list[CompareResult]:
    """Compare every requested workload's history under ``root``.

    ``workloads=None`` compares whatever has history on disk plus every
    registered workload (so a registered workload that has *never* been
    run shows up as ``no-data`` instead of silently passing).
    """
    if workloads is None:
        names = sorted(set(history.stored_workloads(root)) | set(WORKLOADS))
    else:
        names = list(workloads)
    results = []
    for name in names:
        records = history.load(root, name)
        gates = WORKLOADS[name].gates if name in WORKLOADS else ()
        results.append(
            compare_records(
                records,
                gates=gates,
                tolerance=tolerance,
                window=window,
                workload=name,
            )
        )
    return results
