"""Append-only performance history: ``BENCH_<workload>.json`` files.

One file per workload, one JSON record per line (JSON Lines inside a
``.json`` extension — greppable, mergeable, and genuinely append-only:
adding a record is an ``O(1)`` file append, never a rewrite, so two
concurrent runs can share a history directory without clobbering each
other's records).  The full record schema is documented in
``docs/benchmarking.md``.

The default location is the repository root (found via ``git``,
falling back to the working directory), so a clean checkout's first
``python -m repro.bench run`` creates ``BENCH_table_sweep.json`` et
al. right next to ``README.md`` — visible, versionable history.

Loading is tolerant: blank or corrupt lines are skipped (counted and
reported, not fatal), because one mangled line in a months-long
history must not take down the CI gate.

Integrity: every appended record carries an embedded SHA-256 digest of
its own body (:mod:`repro.durable`), so a record whose *line* parses
but whose *content* was damaged (a torn append, a hand-edit) is
detected and skipped like any other corrupt line.  Records written
before the digest existed have no ``sha256`` field and are accepted
unverified — old baselines keep gating.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess

from repro import durable

#: History files are BENCH_<workload>.json at the history root.
_FILE_RE = re.compile(r"^BENCH_([A-Za-z0-9_.-]+)\.json$")


def default_root() -> pathlib.Path:
    """The repository root, or the working directory outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            return pathlib.Path(out.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return pathlib.Path(os.getcwd())


def history_path(root: pathlib.Path | str, workload: str) -> pathlib.Path:
    """The history file for ``workload`` under ``root``."""
    return pathlib.Path(root) / f"BENCH_{workload}.json"


def append(root: pathlib.Path | str, record: dict) -> pathlib.Path:
    """Append one record (sealed with an embedded SHA-256 digest)."""
    path = history_path(root, record["workload"])
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(durable.seal(record), sort_keys=True) + "\n")
    return path


def load(root: pathlib.Path | str, workload: str) -> list[dict]:
    """All records for ``workload``, oldest first ([] when absent).

    Skips lines that are blank or fail to parse — see module doc.
    """
    records, _ = load_with_errors(root, workload)
    return records


def load_with_errors(
    root: pathlib.Path | str, workload: str
) -> tuple[list[dict], int]:
    """Like :func:`load`, also returning the skipped-line count."""
    path = history_path(root, workload)
    if not path.exists():
        return [], 0
    records: list[dict] = []
    skipped = 0
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not (isinstance(record, dict) and "workload" in record):
            skipped += 1
            continue
        if durable.SHA_FIELD in record:
            try:
                durable.verify(record)
            except durable.CorruptStateError:
                skipped += 1
                continue
            # The digest is transport armour, not record content.
            del record[durable.SHA_FIELD]
        records.append(record)
    return records, skipped


def stored_workloads(root: pathlib.Path | str) -> list[str]:
    """Workload names that have a history file under ``root``."""
    root = pathlib.Path(root)
    names = []
    if root.is_dir():
        for entry in sorted(root.iterdir()):
            match = _FILE_RE.match(entry.name)
            if match and entry.is_file():
                names.append(match.group(1))
    return names
