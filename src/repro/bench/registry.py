"""The benchmark observatory's workload registry.

Each :class:`Workload` is a named, self-contained slice of the stack
that the observatory re-measures on every ``python -m repro.bench run``:

* ``table_sweep`` — the fig2c-style sweep (criteria calibration plus a
  failure-probability table per body-bias level), the shape every
  yield figure sits on;
* ``mc_kernels`` — the raw Monte-Carlo / importance-sampling kernels
  (sample generation, cell metrics, hold fixed point, leakage
  decomposition) without any table machinery on top;
* ``lot`` — the production-lot flow (monitor → repair → parametric
  test → ASB calibration) over a small lot;
* ``warm_cache`` — a rerun of the table sweep from a populated result
  cache: must *load* everything, recompute nothing;
* ``rare_event`` — the rare-event engine's value proposition, measured
  head-to-head: one plain-MC failure estimate at the profile's full
  sample count against one adaptive-IS estimate at a ~32x smaller
  solver budget, gated on the solver-call reduction and on the
  adaptive CI half-width staying at least as tight;
* ``service`` — the yield-analysis service's warm path: an in-process
  server completes a fig2c-style job untimed, then the timed burst of
  duplicate submissions and result reads must dedupe everything,
  recompute nothing, and keep the warm result p95 at memcache-like
  latency.

A workload's ``run`` executes entirely inside the runner's timed,
telemetry-collecting region, so its record carries the full
``repro.telemetry/1`` snapshot of exactly that work.  ``prepare`` runs
once, untimed, before the repeats (the warm-cache workload uses it to
populate its cache directory); ``cleanup`` tears the state down.

``gates`` are the *semantic* half of regression detection: assertions
on the telemetry counters that must hold on every record regardless of
wall-clock (a warm run with ``cache.misses > 0`` is broken even if it
happens to be fast).  They are checked by ``repro.bench compare``.

Sizing comes from a :class:`BenchProfile`: ``QUICK`` finishes in
seconds for CI smoke runs, ``FULL`` is representative for local
baseline work.  Both are fixed-seed, so records differ only by machine
and code — never by luck of the RNG.
"""

from __future__ import annotations

import operator
import shutil
import tempfile
from typing import Callable, NamedTuple

import numpy as np


class BenchProfile(NamedTuple):
    """One sizing of the workload suite (fixed seeds throughout)."""

    name: str
    calibration_samples: int
    analysis_samples: int
    table_grid: int
    vbody_levels: tuple[float, ...]
    kernel_cells: int
    is_samples: int
    lot_dies: int
    workers: int = 1
    #: Solver-call budget per estimate for the adaptive-IS sampler the
    #: sweep/lot workloads now run on (the legacy fixed-scale sampler
    #: needed ``analysis_samples`` for the same CI width).
    adaptive_samples: int = 768


#: CI-sized: the whole suite in well under a minute.
QUICK = BenchProfile(
    name="quick",
    calibration_samples=2_500,
    analysis_samples=1_200,
    table_grid=5,
    vbody_levels=(0.0, 0.3),
    kernel_cells=5_000,
    is_samples=20_000,
    lot_dies=10,
    adaptive_samples=384,
)

#: Representative local sizing (minutes, matches benchmark_parallel).
FULL = BenchProfile(
    name="full",
    calibration_samples=12_000,
    analysis_samples=8_000,
    table_grid=9,
    vbody_levels=(-0.3, 0.0, 0.3),
    kernel_cells=20_000,
    is_samples=100_000,
    lot_dies=60,
    adaptive_samples=768,
)


class Gate(NamedTuple):
    """A hard check on one telemetry metric of a record.

    ``source`` selects the metrics section the gate reads: ``counters``
    (default) and ``gauges`` are flat value maps; ``histograms`` reads
    one summary ``field`` (``min``/``max``/``mean``/``p50``/``p95``) of
    the named histogram — how statistical health (e.g. an ESS-ratio
    floor on ``sampling.ess_fraction``) is gated alongside the
    semantic counters.
    """

    metric: str
    op: str  # one of ==, !=, >, >=, <, <=
    value: float
    source: str = "counters"  # counters | gauges | histograms
    field: str = "min"  # histogram summary field (histograms only)

    _OPS = {
        "==": operator.eq,
        "!=": operator.ne,
        ">": operator.gt,
        ">=": operator.ge,
        "<": operator.lt,
        "<=": operator.le,
    }

    @property
    def _display_name(self) -> str:
        if self.source == "histograms":
            return f"{self.metric}.{self.field}"
        return self.metric

    def describe(self) -> str:
        """The gate as one human-readable clause."""
        return f"{self._display_name} {self.op} {self.value:g}"

    def check(self, metrics: dict) -> str | None:
        """``None`` when satisfied, else a human-readable failure.

        ``metrics`` is a record's ``telemetry["metrics"]`` dict
        (``{"counters": ..., "gauges": ..., "histograms": ...}``).
        Counters and gauges default to 0 when absent (the baseline-
        counter contract guarantees the interesting ones exist); a
        missing histogram or a ``None`` field is itself a failure —
        a statistical gate over data that was never observed proves
        nothing.
        """
        if self.source in ("counters", "gauges"):
            actual = metrics.get(self.source, {}).get(self.metric, 0.0)
        elif self.source == "histograms":
            summary = metrics.get("histograms", {}).get(self.metric)
            actual = summary.get(self.field) if summary else None
            if actual is None:
                return (
                    f"gate failed: histogram {self.metric!r} has no "
                    f"{self.field!r} observation, required "
                    f"{self.op} {self.value:g}"
                )
        else:
            raise ValueError(f"unknown gate source {self.source!r}")
        if Gate._OPS[self.op](actual, self.value):
            return None
        return (
            f"gate failed: {self._display_name} = {actual:g}, "
            f"required {self.op} {self.value:g}"
        )


class Workload(NamedTuple):
    """One registered benchmark workload."""

    name: str
    description: str
    run: Callable[[BenchProfile, object], None]
    prepare: Callable[[BenchProfile], object] | None = None
    cleanup: Callable[[object], None] | None = None
    gates: tuple[Gate, ...] = ()


# ----------------------------------------------------------------------
# Workload bodies (imports are deferred so `repro.bench compare` /
# `report` never pay for — or require — the numerics stack's startup).
# ----------------------------------------------------------------------
def _sweep_context(profile: BenchProfile, cache_dir: str | None = None):
    from repro.experiments.context import ExperimentContext

    return ExperimentContext(
        target=1e-4,
        calibration_samples=profile.calibration_samples,
        analysis_samples=profile.adaptive_samples,
        sampler="adaptive-is",
        sampler_scale=None,
        table_grid=profile.table_grid,
        seed=11,
        workers=profile.workers,
        cache_dir=cache_dir,
    )


def _run_table_sweep(profile: BenchProfile, state) -> None:
    ctx = _sweep_context(profile)
    for vbody in profile.vbody_levels:
        ctx.table(vbody)


def _run_mc_kernels(profile: BenchProfile, state) -> None:
    from repro.observability.tracing import trace
    from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
    from repro.sram.leakage import cell_leakage
    from repro.sram.metrics import OperatingConditions, compute_cell_metrics
    from repro.sram.solver import solve_hold_state
    from repro.stats.rare_event import tuned_scale
    from repro.stats.sampling import importance_sample_dvt
    from repro.technology import predictive_70nm
    from repro.technology.corners import ProcessCorner

    tech = predictive_70nm()
    geometry = CellGeometry()
    rng = np.random.default_rng(7)
    # The inflation matched to the ~4e-4 union-failure depth of the
    # 6-dimensional cell (ESS fraction ~0.48 where the historical
    # hard-coded 2.0 sat near 0.08) — see repro.stats.rare_event.
    scale = tuned_scale(4e-4, 6)
    with trace("kernel.importance_sample"):
        sample = importance_sample_dvt(
            tech, geometry, rng, profile.is_samples, scale
        )
        assert sample.n_samples == profile.is_samples
    cells = SixTCell(
        tech,
        geometry,
        ProcessCorner(0.0),
        sample_cell_dvt(tech, geometry, rng, profile.kernel_cells),
    )
    with trace("kernel.cell_metrics"):
        compute_cell_metrics(cells, OperatingConditions.nominal(tech))
    with trace("kernel.hold_state"):
        solve_hold_state(cells, 0.3)
    with trace("kernel.leakage"):
        cell_leakage(cells)


def _run_lot(profile: BenchProfile, state) -> None:
    from repro.core.body_bias import SelfRepairingSRAM
    from repro.core.lot import LotSimulator
    from repro.core.source_bias import SourceBiasDAC
    from repro.experiments.asb import HoldProbabilityTable
    from repro.sram.array import ArrayOrganization

    ctx = _sweep_context(profile)
    organization = ArrayOrganization.from_capacity(
        2 * 1024, rows=64, redundancy_fraction=0.05
    )
    pipeline = SelfRepairingSRAM(
        ctx.analyzer(),
        organization,
        table_provider=ctx.table,
        leakage_samples=profile.analysis_samples,
    )
    hold_table = HoldProbabilityTable(
        ctx,
        corner_grid=np.linspace(-0.1, 0.1, 5),
        vsb_grid=np.array([0.0, 0.3, 0.45, 0.55, 0.6, 0.635]),
    )
    simulator = LotSimulator(
        pipeline, hold_table, dac=SourceBiasDAC(bits=5, full_scale=0.62)
    )
    report = simulator.run(
        n_dies=profile.lot_dies, sigma_inter=0.04, seed=3
    )
    assert report.n_dies == profile.lot_dies


def _prepare_rare_event(profile: BenchProfile):
    """Calibrate criteria once, untimed; the run reuses the context."""
    ctx = _sweep_context(profile)
    ctx.criteria
    return ctx


def _run_rare_event(profile: BenchProfile, ctx) -> None:
    """Plain MC vs adaptive IS, head to head on one failure estimate.

    Both estimates target the same nominal-corner union failure
    probability (~4e-4 by calibration construction, so plain MC at the
    profile's ``is_samples`` still sees failures and reports a real
    CI).  Solver-call costs are read from the ``solver.calls`` counter
    around each estimate — the adaptive side is charged for its MPFP
    seed search and pilot too — and exported as ``rare_event.*``
    gauges the gates assert on.
    """
    from repro.failures.analysis import CellFailureAnalyzer
    from repro.observability.diagnostics import DEFAULT_Z
    from repro.observability.metrics import registry, set_gauge
    from repro.technology.corners import ProcessCorner

    corner = ProcessCorner(0.0)
    calls = registry.counter("solver.calls")

    def estimate(sampler, budget, scale):
        start = calls.value
        analyzer = CellFailureAnalyzer(
            ctx.tech,
            ctx.criteria,
            geometry=ctx.geometry,
            conditions=ctx.conditions,
            n_samples=budget,
            scale=scale,
            seed=ctx.seed + 1,
            sampler=sampler,
        )
        result = analyzer.failure_probabilities(corner)["any"]
        return result, calls.value - start

    plain, plain_calls = estimate("plain", profile.is_samples, None)
    adaptive, adaptive_calls = estimate(
        "adaptive-is", profile.is_samples // 32, None
    )
    halfwidth_plain = DEFAULT_Z * plain.stderr
    halfwidth_adaptive = DEFAULT_Z * adaptive.stderr
    set_gauge("rare_event.solver_calls_plain", float(plain_calls))
    set_gauge("rare_event.solver_calls_adaptive", float(adaptive_calls))
    set_gauge(
        "rare_event.solver_call_reduction",
        plain_calls / max(adaptive_calls, 1),
    )
    set_gauge("rare_event.ci_halfwidth_plain", halfwidth_plain)
    set_gauge("rare_event.ci_halfwidth_adaptive", halfwidth_adaptive)
    set_gauge(
        "rare_event.ci_halfwidth_ratio",
        halfwidth_adaptive / halfwidth_plain
        if halfwidth_plain > 0
        else float("inf"),
    )


def _service_spec(profile: BenchProfile) -> dict:
    """The fig2c-style job spec the service workload serves (sized and
    seeded exactly like :func:`_sweep_context`, so a warm server shares
    cache artifacts with the sweep workloads)."""
    return {
        "kind": "table",
        "target": 1e-4,
        "calibration_samples": profile.calibration_samples,
        "analysis_samples": profile.adaptive_samples,
        "sampler": "adaptive-is",
        "table_grid": profile.table_grid,
        "seed": 11,
        "vbody_levels": list(profile.vbody_levels),
    }


def _prepare_service(profile: BenchProfile) -> dict:
    """Boot an in-process server and complete the cold build, untimed.

    Collection is enabled here (the runner only enables it inside the
    timed repeats) because the load generator's healthz assertions read
    the ``service.*`` counters during the cold phase too.
    """
    from repro import observability
    from repro.service.jobs import JobManager
    from repro.service.loadgen import run_load
    from repro.service.server import BackgroundServer

    observability.enable()
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-service-")
    manager = JobManager(
        workers=profile.workers,
        cache_dir=cache_dir,
        checkpoint_dir=cache_dir,
    )
    background = BackgroundServer(manager)
    url = background.start()
    spec = _service_spec(profile)
    run_load(url, spec, duplicates=0, result_gets=1, timeout=600)
    return {
        "url": url,
        "spec": spec,
        "background": background,
        "cache_dir": cache_dir,
    }


def _run_service(profile: BenchProfile, state) -> None:
    """The warm serving path: duplicate submits + result reads.

    Every request in the burst must be answered from memory (the job
    completed during prepare) — the gates pin that down semantically
    (``mc.samples == 0``: nothing recomputed) and statistically (warm
    result p95 latency).  :func:`~repro.service.loadgen.run_load`
    raises on any contract violation, failing the record loudly.
    """
    from repro.service.loadgen import run_load

    run_load(
        state["url"],
        state["spec"],
        duplicates=10,
        result_gets=30,
        timeout=60,
        # Event-driven completion wait: the warm burst also proves the
        # SSE stream answers instantly for an already-completed job.
        follow=True,
    )


def _cleanup_service(state) -> None:
    state["background"].stop()
    shutil.rmtree(state["cache_dir"], ignore_errors=True)


def _prepare_warm_cache(profile: BenchProfile) -> str:
    """Populate a throwaway cache directory with a cold sweep build."""
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-warm-")
    ctx = _sweep_context(profile, cache_dir=cache_dir)
    for vbody in profile.vbody_levels:
        ctx.table(vbody)
    return cache_dir


def _run_warm_cache(profile: BenchProfile, cache_dir) -> None:
    ctx = _sweep_context(profile, cache_dir=cache_dir)
    for vbody in profile.vbody_levels:
        ctx.table(vbody)


def _cleanup_warm_cache(cache_dir) -> None:
    shutil.rmtree(cache_dir, ignore_errors=True)


#: Workload name -> spec, in the order `run` executes them.
WORKLOADS: dict[str, Workload] = {
    "table_sweep": Workload(
        name="table_sweep",
        description="fig2c-style sweep: calibration + one failure "
        "table per body-bias level",
        run=_run_table_sweep,
        gates=(
            Gate("mc.samples", ">", 0),
            Gate("mc.estimates", ">", 0),
            Gate("solver.calls", ">", 0),
            # The rare-event engine's economy, locked in: no single
            # failure estimate may spend more than 1000 solver calls
            # (the legacy fixed-scale sampler needed 1200 at quick and
            # 8000 at full sizing for the same CI width; a regression
            # to per-sample solving or a silently inflated budget
            # trips this immediately at either profile).
            Gate(
                "analysis.solver_calls", "<=", 1000,
                source="histograms", field="max",
            ),
            # Chaos gate: a healthy (no-fault-plan) run must never burn
            # a task's whole retry budget — exhausted retries on clean
            # hardware mean the fault-tolerance layer itself regressed.
            Gate("executor.task_failures", "==", 0),
        ),
    ),
    "mc_kernels": Workload(
        name="mc_kernels",
        description="raw MC/IS kernels: sample generation, cell "
        "metrics, hold fixed point, leakage",
        run=_run_mc_kernels,
        gates=(
            # Statistical-health floor: the tail-matched proposal
            # (scale ~1.37 from tuned_scale) keeps the Kish ESS
            # fraction near 0.48; the floor at 0.3 both locks in the
            # improvement over the historical sigma-2 proposal (~0.08)
            # and catches any proposal change that degrades estimator
            # quality even when it is faster in wall-clock.
            Gate(
                "sampling.ess_fraction", ">=", 0.3,
                source="histograms", field="min",
            ),
            Gate("sampling.draws", ">", 0),
        ),
    ),
    "lot": Workload(
        name="lot",
        description="production-lot flow (monitor/repair/test/ASB) "
        "over a small lot",
        run=_run_lot,
        gates=(
            Gate("lot.dies", ">", 0),
            # Chaos gate (see table_sweep).
            Gate("executor.task_failures", "==", 0),
        ),
    ),
    "rare_event": Workload(
        name="rare_event",
        description="plain MC vs adaptive IS on one failure estimate: "
        "solver-call reduction at equal-or-tighter CI half-width",
        run=_run_rare_event,
        prepare=_prepare_rare_event,
        gates=(
            # The tentpole acceptance criterion, enforced per record:
            # >=10x fewer solver calls (MPFP seeding and pilot charged
            # to the adaptive side) at an equal-or-tighter CI.
            Gate(
                "rare_event.solver_call_reduction", ">=", 10.0,
                source="gauges",
            ),
            Gate(
                "rare_event.ci_halfwidth_ratio", "<=", 1.0,
                source="gauges",
            ),
            # Degeneracy guard: a zero adaptive half-width would mean
            # the estimate saw no variance at all (e.g. every sample
            # blocked or an empty tail) — the ratio gate alone would
            # pass that vacuously.
            Gate(
                "rare_event.ci_halfwidth_adaptive", ">", 0.0,
                source="gauges",
            ),
        ),
    ),
    "service": Workload(
        name="service",
        description="yield-analysis service warm path: duplicate "
        "submits dedupe, result GETs served from memory",
        run=_run_service,
        prepare=_prepare_service,
        cleanup=_cleanup_service,
        gates=(
            # The service acceptance criteria, enforced per record:
            # nothing may fail, duplicates must attach to the existing
            # job, and a warm result read must come back at
            # memcache-like latency (the cold build takes seconds, so
            # an accidental recompute blows this bound by orders of
            # magnitude).
            Gate("service.jobs_failed", "==", 0),
            # Lifecycle invariants: the standard burst runs with no
            # queue bound and no crash, so nothing may be shed at
            # admission and no ledger replay may ever declare a job
            # unrecoverable (absent counters read as zero on records
            # from before these existed).
            Gate("service.jobs_lost", "==", 0),
            Gate("service.jobs_rejected", "==", 0),
            Gate("service.jobs_deduped", ">", 0),
            Gate("service.requests", ">", 0),
            # The event journal must absorb the standard burst without
            # evicting anything — an SSE client that connected at the
            # start could replay the whole story.
            Gate("service.events", ">", 0),
            Gate("service.events_dropped", "==", 0),
            Gate(
                "service.client_result_seconds", "<=", 0.25,
                source="histograms", field="p95",
            ),
            # The semantic definition of "warm" (see warm_cache): the
            # burst recomputes nothing.
            Gate("mc.samples", "==", 0),
        ),
    ),
    "warm_cache": Workload(
        name="warm_cache",
        description="table sweep rerun from a populated result cache "
        "(must load everything)",
        run=_run_warm_cache,
        prepare=_prepare_warm_cache,
        cleanup=_cleanup_warm_cache,
        gates=(
            # The semantic definition of "warm": nothing recomputed.
            Gate("cache.misses", "==", 0),
            Gate("cache.hits", ">", 0),
            Gate("mc.samples", "==", 0),
            # Chaos gate: a warm run over entries the prepare step just
            # wrote must quarantine nothing — a nonzero count means the
            # durable-envelope write path corrupts its own files.
            Gate("cache.quarantined", "==", 0),
        ),
    ),
}


def profile_by_name(name: str) -> BenchProfile:
    """Look up a sizing profile (``quick`` or ``full``)."""
    profiles = {p.name: p for p in (QUICK, FULL)}
    if name not in profiles:
        raise KeyError(f"unknown profile {name!r}; known: {sorted(profiles)}")
    return profiles[name]
