"""CLI of the benchmark observatory: ``python -m repro.bench``.

Subcommands::

    run      measure workloads (best-of-K) and append history records
    compare  judge the latest records; exit 1 on regression/gate fail
    report   render the stored trajectory as markdown
    list     show registered workloads and their counter gates

Typical loops:

* CI smoke gate (the ``perf-smoke`` job)::

      python -m repro.bench run --quick
      python -m repro.bench compare --tolerance 0.35

* local baseline work before and after an optimisation::

      python -m repro.bench run                 # full sizing, appended
      python -m repro.bench report              # did it move?

History lives in ``BENCH_<workload>.json`` files at the repository
root by default (``--history-dir`` overrides); the record schema and
the baseline policy are documented in ``docs/benchmarking.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import compare as compare_mod
from repro.bench import history, report
from repro.bench.registry import WORKLOADS, profile_by_name
from repro.bench.runner import run_workload
from repro.observability.log import get_logger
from repro.observability.output import resolve_out_path


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--history-dir",
        default=None,
        metavar="DIR",
        help="history location (default: the repository root)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        choices=sorted(WORKLOADS),
        help="restrict to one workload (repeatable; default: all)",
    )


def _root(args) -> object:
    return args.history_dir if args.history_dir else history.default_root()


def _workloads(args) -> list[str]:
    return args.workload if args.workload else sorted(WORKLOADS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark observatory: measure, store, and gate "
        "the stack's performance trajectory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="measure workloads and append history records"
    )
    _add_common(run_p)
    run_p.add_argument(
        "--quick",
        action="store_true",
        help="CI sizing: seconds per workload instead of minutes",
    )
    run_p.add_argument(
        "--repeats",
        type=int,
        default=None,
        metavar="K",
        help="timed repetitions per workload (default: 2 quick, 3 full)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan-out width inside the workloads (default 1 = serial)",
    )

    cmp_p = sub.add_parser(
        "compare", help="judge the latest records against the baseline"
    )
    _add_common(cmp_p)
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=compare_mod.DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="relative band on the baseline median "
        f"(default {compare_mod.DEFAULT_TOLERANCE})",
    )
    cmp_p.add_argument(
        "--window",
        type=int,
        default=compare_mod.DEFAULT_WINDOW,
        metavar="N",
        help="prior records the baseline median is taken over "
        f"(default {compare_mod.DEFAULT_WINDOW})",
    )

    rep_p = sub.add_parser(
        "report", help="render the stored trajectory as markdown"
    )
    _add_common(rep_p)
    rep_p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the markdown to FILE instead of stdout; an "
        "existing FILE diverts to a numbered sibling unless "
        "--overwrite is passed",
    )
    rep_p.add_argument(
        "--overwrite",
        action="store_true",
        help="allow --out to replace an existing file",
    )

    sub.add_parser("list", help="show registered workloads and gates")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, spec in WORKLOADS.items():
            print(f"{name:12s}  {spec.description}")
            for gate in spec.gates:
                print(f"{'':12s}  gate: {gate.describe()}")
        return 0

    if args.command == "run":
        if args.workers < 1:
            parser.error(f"--workers must be >= 1, got {args.workers}")
        profile = profile_by_name("quick" if args.quick else "full")
        if args.workers != 1:
            profile = profile._replace(workers=args.workers)
        repeats = args.repeats
        if repeats is None:
            repeats = 2 if args.quick else 3
        root = _root(args)
        for name in _workloads(args):
            print(f"[bench] {name} ({profile.name}, best of {repeats}) ...",
                  flush=True)
            record = run_workload(WORKLOADS[name], profile, repeats=repeats)
            path = history.append(root, record)
            print(
                f"[bench] {name}: median {record['median_seconds']:.3f}s, "
                f"best {record['best_seconds']:.3f}s -> {path}"
            )
        return 0

    if args.command == "compare":
        results = compare_mod.compare_all(
            _root(args),
            workloads=args.workload,
            tolerance=args.tolerance,
            window=args.window,
        )
        for result in results:
            print(result.describe())
        failed = [r for r in results if r.failed]
        if failed:
            print(
                f"\nFAIL: {len(failed)} of {len(results)} workload(s) "
                "regressed or broke a counter gate",
                file=sys.stderr,
            )
            return 1
        print(f"\nok: {len(results)} workload(s) within tolerance")
        return 0

    if args.command == "report":
        markdown = report.render_markdown(_root(args), workloads=args.workload)
        if args.out:
            # Same collision policy as --metrics-out/--profile-out/
            # --telemetry-out: never silently clobber an existing file.
            out_path = resolve_out_path(
                args.out, args.overwrite, get_logger("bench.cli"),
                "report", "--overwrite",
            )
            with open(out_path, "w") as fh:
                fh.write(markdown)
            print(f"wrote {out_path}")
        else:
            print(markdown, end="")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
