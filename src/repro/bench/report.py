"""Render the stored history as markdown trajectory tables.

``python -m repro.bench report`` prints one table per workload — the
longitudinal view the observatory exists for: every stored record with
its timestamp, short git SHA, sizing profile, repeat count, best and
median wall-clock, and the step-to-step delta.  Paste the output into
``docs/performance.md`` or read it in a terminal; it is plain GitHub
markdown.
"""

from __future__ import annotations

import datetime

from repro.bench import history
from repro.bench.compare import DEFAULT_WINDOW


def _when(timestamp: float | None) -> str:
    if not timestamp:
        return "?"
    return datetime.datetime.fromtimestamp(
        timestamp, tz=datetime.timezone.utc
    ).strftime("%Y-%m-%d %H:%M")


def _delta(current: float, previous: float | None) -> str:
    if previous is None or previous <= 0:
        return "—"
    change = 100.0 * (current / previous - 1.0)
    return f"{change:+.1f}%"


def render_workload(records: list[dict], workload: str, limit: int = 20) -> str:
    """One workload's trajectory as a markdown section."""
    lines = [f"### `{workload}`", ""]
    if not records:
        lines.append("_no records yet — run `python -m repro.bench run`_")
        return "\n".join(lines) + "\n"
    shown = records[-limit:]
    if len(records) > limit:
        lines.append(
            f"_showing the last {limit} of {len(records)} records_"
        )
        lines.append("")
    lines += [
        "| when (UTC) | git | profile | repeats | best [s] | median [s] | Δ median |",
        "|---|---|---|---|---|---|---|",
    ]
    previous_by_profile: dict[str, float] = {}
    # Walk the full history so the first shown row's delta is correct.
    first_shown = len(records) - len(shown)
    for index, record in enumerate(records):
        profile = str(record.get("profile", "?"))
        median = record["median_seconds"]
        delta = _delta(median, previous_by_profile.get(profile))
        previous_by_profile[profile] = median
        if index < first_shown:
            continue
        sha = (record.get("environment", {}).get("git_sha") or "?")[:10]
        lines.append(
            f"| {_when(record.get('timestamp'))} | `{sha}` | {profile} "
            f"| {record.get('repeats', '?')} "
            f"| {record['best_seconds']:.3f} "
            f"| {median:.3f} | {delta} |"
        )
    return "\n".join(lines) + "\n"


def render_markdown(root, workloads: list[str] | None = None) -> str:
    """The whole observatory's trajectory, one section per workload."""
    names = workloads if workloads is not None else history.stored_workloads(root)
    lines = [
        "## Benchmark trajectory",
        "",
        f"Baselines are the median of the last {DEFAULT_WINDOW} records "
        "at the same profile (see `docs/benchmarking.md`).",
        "",
    ]
    if not names:
        lines.append("_no history yet — run `python -m repro.bench run`_")
        return "\n".join(lines) + "\n"
    for name in names:
        lines.append(render_workload(history.load(root, name), name))
    return "\n".join(lines)
