"""The benchmark regression observatory.

Turns the telemetry layer (:mod:`repro.observability`) into
*longitudinal* performance data: a registry of representative
workloads, a best-of-K runner that records wall-clock + the full
``repro.telemetry/1`` snapshot + an environment fingerprint, an
append-only ``BENCH_<workload>.json`` history at the repo root, and a
noise-aware comparator that gates CI.

The CLI is the main entry point::

    python -m repro.bench run [--quick]       # measure + append records
    python -m repro.bench compare             # exit 1 on regression
    python -m repro.bench report              # markdown trajectory

Workflow, record schema, and baseline-update etiquette are documented
in ``docs/benchmarking.md``.
"""

from __future__ import annotations

from repro.bench.compare import (
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    CompareResult,
    compare_all,
    compare_records,
)
from repro.bench.history import (
    append,
    default_root,
    history_path,
    load,
    stored_workloads,
)
from repro.bench.registry import (
    FULL,
    QUICK,
    WORKLOADS,
    BenchProfile,
    Gate,
    Workload,
    profile_by_name,
)
from repro.bench.report import render_markdown
from repro.bench.runner import RECORD_SCHEMA, run_workload

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "FULL",
    "QUICK",
    "RECORD_SCHEMA",
    "WORKLOADS",
    "BenchProfile",
    "CompareResult",
    "Gate",
    "Workload",
    "append",
    "compare_all",
    "compare_records",
    "default_root",
    "history_path",
    "load",
    "profile_by_name",
    "render_markdown",
    "run_workload",
    "stored_workloads",
]
