"""Persistence of expensive calibration artifacts.

Criteria calibration and the interpolated probability tables take
minutes at full accuracy; a downstream user should pay that once.
This module serialises them to plain JSON (no pickle — the files are
human-inspectable and safe to commit):

* :func:`save_criteria` / :func:`load_criteria` — the four calibrated
  thresholds plus a fingerprint of the technology card they were
  calibrated against (loading verifies the fingerprint so stale
  criteria cannot silently corrupt an analysis);
* :func:`save_table` / :func:`load_table` — a
  :class:`~repro.core.tables.FailureProbabilityTable`'s grid and
  log-probabilities, rebuilt into an interpolator on load without
  re-running any Monte Carlo.

Durability: every file is written atomically (temp + rename) and
sealed with an embedded SHA-256 checksum via :mod:`repro.durable`;
loading verifies the checksum, so a truncated or bit-rotted artifact
fails with a clear :class:`~repro.durable.CorruptStateError` instead
of silently feeding garbage splines into an analysis.  Format-1 files
(written before checksums existed) still load, unverified.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib

import numpy as np

from repro import durable
from repro.core.tables import FailureProbabilityTable
from repro.failures.criteria import FailureCriteria
from repro.technology.parameters import TechnologyParameters

#: Format version written into every file (2 = checksummed envelope).
_FORMAT = 2
#: Formats this module can still read (1 predates the checksum).
_READABLE_FORMATS = (1, 2)


def technology_fingerprint(tech: TechnologyParameters) -> str:
    """A stable hash of every parameter in the technology card."""
    payload = json.dumps(
        dataclasses.asdict(tech), sort_keys=True, default=float
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def save_criteria(
    criteria: FailureCriteria,
    path: str | pathlib.Path,
    tech: TechnologyParameters,
) -> None:
    """Write calibrated criteria (and the technology fingerprint)."""
    payload = {
        "format": _FORMAT,
        "kind": "failure-criteria",
        "technology": tech.name,
        "fingerprint": technology_fingerprint(tech),
        "criteria": dataclasses.asdict(criteria),
    }
    durable.write_sealed(path, payload)


def _load_payload(path: str | pathlib.Path, kind: str, noun: str) -> dict:
    """Parse, shape-check, and (format >= 2) checksum-verify one file."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise durable.CorruptStateError(
            f"{path} is corrupt or truncated (malformed JSON: {exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("kind") != kind:
        raise ValueError(f"{path} is not a {noun} file")
    if payload.get("format") not in _READABLE_FORMATS:
        raise ValueError(f"unsupported format {payload.get('format')}")
    if payload["format"] >= 2:
        try:
            durable.verify(payload)
        except durable.CorruptStateError as exc:
            raise durable.CorruptStateError(
                f"{path} failed integrity verification ({exc}); the file "
                "was truncated, bit-rotted, or hand-edited — rebuild it"
            ) from exc
    return payload


def load_criteria(
    path: str | pathlib.Path,
    tech: TechnologyParameters,
    strict: bool = True,
) -> FailureCriteria:
    """Load criteria, verifying integrity and that they match ``tech``.

    Args:
        path: the JSON file written by :func:`save_criteria`.
        tech: the technology card the criteria will be used with.
        strict: raise if the stored fingerprint does not match ``tech``
            (set False to knowingly reuse criteria across card tweaks).
    """
    payload = _load_payload(path, "failure-criteria", "criteria")
    if strict and payload["fingerprint"] != technology_fingerprint(tech):
        raise ValueError(
            f"criteria in {path} were calibrated against a different "
            f"technology card (stored fingerprint {payload['fingerprint']})"
        )
    return FailureCriteria(**payload["criteria"])


def save_table(
    table: FailureProbabilityTable,
    path: str | pathlib.Path,
    tech: TechnologyParameters,
) -> None:
    """Write a failure-probability table's grid data."""
    grid = table.grid
    curves = {
        name: [float(spline(x)) for x in grid]
        for name, spline in table._splines.items()
    }
    payload = {
        "format": _FORMAT,
        "kind": "failure-table",
        "technology": tech.name,
        "fingerprint": technology_fingerprint(tech),
        "grid": [float(x) for x in grid],
        "log10_probability": curves,
        "conditions": dataclasses.asdict(table.conditions),
    }
    diagnostics = getattr(table, "diagnostics", None)
    if diagnostics is not None:
        # Estimator health travels with the numbers it qualifies, so a
        # table loaded years later still reports how converged it was.
        payload["diagnostics"] = diagnostics.as_dict()
    durable.write_sealed(path, payload)


def load_table(
    path: str | pathlib.Path,
    tech: TechnologyParameters,
    strict: bool = True,
) -> FailureProbabilityTable:
    """Rebuild a table from disk without re-running Monte Carlo."""
    from scipy.interpolate import PchipInterpolator

    from repro.sram.metrics import OperatingConditions

    payload = _load_payload(path, "failure-table", "table")
    if strict and payload["fingerprint"] != technology_fingerprint(tech):
        raise ValueError(
            f"table in {path} was built against a different technology "
            f"card (stored fingerprint {payload['fingerprint']})"
        )
    from repro.observability.diagnostics import BatchDiagnostics

    table = FailureProbabilityTable.__new__(FailureProbabilityTable)
    table.analyzer = None  # detached from any analyzer
    table.conditions = OperatingConditions(**payload["conditions"])
    table.grid = np.array(payload["grid"], dtype=float)
    table._splines = {
        name: PchipInterpolator(table.grid, np.array(values, dtype=float))
        for name, values in payload["log10_probability"].items()
    }
    table.diagnostics = (
        BatchDiagnostics.from_dict(payload["diagnostics"])
        if payload.get("diagnostics") is not None
        else None
    )
    return table
