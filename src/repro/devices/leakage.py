"""Closed-form leakage components with body-bias dependence.

The paper (Section III.F, Fig. 5a, its reference [7]) decomposes the
leakage of a cell in bulk CMOS into three components:

* **subthreshold** channel leakage — exponential in -Vt, so reverse body
  bias (RBB) suppresses it and forward body bias (FBB) inflates it;
* **gate tunnelling** — set by the oxide field, essentially insensitive
  to body bias;
* **junction** leakage — reverse-junction band-to-band tunnelling (BTBT)
  that grows exponentially with reverse bias (so RBB inflates it), plus
  the body-source diode that turns on under strong FBB.

These functions are numpy-vectorised over any argument.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mosfet import MOSFET, ArrayLike
from repro.technology.parameters import DeviceParameters


def subthreshold_leakage(
    device: MOSFET, vds: ArrayLike, vsb: ArrayLike = 0.0
) -> np.ndarray:
    """Off-state channel leakage [A] of ``device`` at normalised biases.

    ``vsb`` is positive for reverse body bias; ``vds`` must be
    non-negative.
    """
    return device.subthreshold_current(vds=vds, vsb=vsb)


def gate_leakage(
    params: DeviceParameters, width: float, length: float, vox: ArrayLike
) -> np.ndarray:
    """Gate tunnelling current [A] at oxide voltage magnitude ``vox``.

    The density card is referenced to Vox = 1 V; the current scales
    exponentially with the oxide voltage and linearly with gate area.
    """
    vox = np.abs(np.asarray(vox, dtype=float))
    density = params.j_gate * np.exp((vox - 1.0) / params.v0_gate)
    return width * length * density


def junction_leakage(
    params: DeviceParameters,
    area: float,
    v_reverse: ArrayLike,
    ut: float,
) -> np.ndarray:
    """Signed junction current [A] as a function of reverse bias.

    Positive ``v_reverse`` (reverse-biased junction) yields the saturation
    plus BTBT components (both positive).  Negative ``v_reverse`` means
    the junction is forward biased — the diode term then dominates and is
    returned as a *negative* number (current flows the other way), whose
    magnitude bounds the usable forward body bias.
    """
    v = np.asarray(v_reverse, dtype=float)
    reverse = area * (
        params.j_jn * (1.0 - np.exp(-np.maximum(v, 0.0) / ut))
        + params.j_btbt * np.exp((np.maximum(v, 0.0) - 1.0) / params.v0_btbt)
    )
    forward_v = np.maximum(-v, 0.0)
    # Clip the diode exponent: beyond ~1 V forward the current is already
    # astronomically larger than anything else in the cell.
    exponent = np.minimum(forward_v / (params.m_diode * ut), 60.0)
    forward = area * params.j_diode * (np.exp(exponent) - 1.0)
    return np.where(v >= 0.0, reverse, -forward)


def junction_leakage_magnitude(
    params: DeviceParameters,
    area: float,
    v_reverse: ArrayLike,
    ut: float,
) -> np.ndarray:
    """Absolute junction leakage [A]; convenient for power budgets."""
    return np.abs(junction_leakage(params, area, v_reverse, ut))
