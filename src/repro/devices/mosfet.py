"""EKV-style compact MOSFET model.

This is the reproduction's substitute for the HSPICE/BPTM device models
used by the paper.  The drain-current expression is the classic EKV
interpolation

    I_D = Is * [F((Vgs - Vth) / (n Ut)) - F((Vgs - Vth - n Vds) / (n Ut))]

with ``F(x) = ln(1 + exp(x/2))^2`` and ``Is = 2 n mu_eff Cox (W/L) Ut^2``,
which reduces to the familiar limits:

* deep subthreshold: ``I ~ Is exp((Vgs-Vth)/(n Ut)) (1 - exp(-Vds/Ut))``,
* strong-inversion saturation: ``I ~ (mu_eff Cox / 2n) (W/L) (Vgs-Vth)^2``.

The threshold voltage includes the body effect (``gamma``) and DIBL, the
mobility a first-order vertical-field degradation (``theta``).  Everything
is numpy-vectorised: any terminal voltage or the per-instance threshold
shift ``dvt`` may be an array, enabling Monte-Carlo over millions of
device instances in a single call.

Sign conventions: the public API is terminal-based
(:meth:`MOSFET.current` takes vg, vd, vs, vb) and returns the conventional
drain current — positive flowing drain->source for NMOS with vds > 0, and
positive flowing source->drain for PMOS (i.e. the magnitude of the on
current is positive for both).  Internally PMOS is mapped onto the NMOS
equations by flipping every voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import thermal_voltage
from repro.technology.parameters import DeviceParameters

#: Floor for the body-effect square-root argument [V]; limits how far
#: forward body bias can collapse the depletion term.
_PHI_FLOOR = 0.05
#: Reference temperature for the card parameters [K] (27 C).
_T_REF = 300.15

ArrayLike = float | np.ndarray


def _softplus(x: ArrayLike) -> np.ndarray:
    """Numerically stable ln(1 + exp(x))."""
    return np.logaddexp(0.0, x)


def _ekv_f(x: ArrayLike) -> np.ndarray:
    """The EKV interpolation function F(x) = ln(1 + exp(x/2))^2."""
    return np.square(_softplus(np.asarray(x, dtype=float) / 2.0))


@dataclass(frozen=True)
class MOSFET:
    """One MOSFET instance (or a vectorised family of instances).

    Attributes:
        params: the technology card for this polarity.
        width: channel width [m].
        length: channel length [m].
        cox: gate-oxide capacitance per area [F/m^2].
        temperature: junction temperature [K].
        polarity: ``"nmos"`` or ``"pmos"``.
        dvt: threshold shift [V] added to ``params.vth0``; scalar or array
            (inter-die corner + intra-die RDF sample).  Positive ``dvt``
            always *increases* the threshold magnitude.
    """

    params: DeviceParameters
    width: float
    length: float
    cox: float
    temperature: float
    polarity: str = "nmos"
    dvt: ArrayLike = field(default=0.0)

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"bad polarity {self.polarity!r}")
        if self.width <= 0 or self.length <= 0:
            raise ValueError("width and length must be positive")

    @property
    def ut(self) -> float:
        """Thermal voltage [V] at the instance temperature."""
        return thermal_voltage(self.temperature)

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS."""
        return 1 if self.polarity == "nmos" else -1

    def with_dvt(self, dvt: ArrayLike) -> "MOSFET":
        """Return a copy with a different threshold shift (scalar/array)."""
        return MOSFET(
            params=self.params,
            width=self.width,
            length=self.length,
            cox=self.cox,
            temperature=self.temperature,
            polarity=self.polarity,
            dvt=dvt,
        )

    # ------------------------------------------------------------------
    # Threshold and current (normalised, NMOS-convention voltages)
    # ------------------------------------------------------------------
    def threshold(self, vsb: ArrayLike = 0.0, vds: ArrayLike = 0.0) -> np.ndarray:
        """Threshold magnitude [V] vs source-body and drain-source bias.

        ``vsb`` is the *normalised* source-to-body voltage (positive for
        reverse body bias in both polarities); ``vds`` the normalised
        (non-negative) drain-source voltage driving DIBL.  The card's
        ``vth0`` is referenced to 27 C; the threshold falls by
        ``vth_tempco`` per kelvin above that.
        """
        p = self.params
        depletion = np.sqrt(np.maximum(p.phi_s + np.asarray(vsb, dtype=float),
                                       _PHI_FLOOR))
        body = p.gamma * (depletion - np.sqrt(p.phi_s))
        vth0 = p.vth0 - p.vth_tempco * (self.temperature - _T_REF)
        return vth0 + np.asarray(self.dvt, dtype=float) + body - p.dibl * np.asarray(vds, dtype=float)

    def _ids_normalized(
        self, vgs: ArrayLike, vds: ArrayLike, vsb: ArrayLike
    ) -> np.ndarray:
        """Drain current [A] for normalised voltages with vds >= 0."""
        p = self.params
        ut = self.ut
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vth = self.threshold(vsb=vsb, vds=vds)
        overdrive = vgs - vth
        mu_t = p.mobility * (self.temperature / _T_REF) ** (
            -p.mobility_temp_exponent
        )
        mu_eff = mu_t / (1.0 + p.theta * np.maximum(overdrive, 0.0))
        i_spec = 2.0 * p.n_sub * mu_eff * self.cox * (self.width / self.length) * ut * ut
        x_fwd = overdrive / (p.n_sub * ut)
        x_rev = (overdrive - p.n_sub * vds) / (p.n_sub * ut)
        return i_spec * (_ekv_f(x_fwd) - _ekv_f(x_rev))

    # ------------------------------------------------------------------
    # Terminal-based public API
    # ------------------------------------------------------------------
    def current(
        self,
        vg: ArrayLike,
        vd: ArrayLike,
        vs: ArrayLike,
        vb: ArrayLike,
    ) -> np.ndarray:
        """Channel current [A] flowing from the drain *terminal* to the
        source *terminal* (NMOS convention; for PMOS the returned value is
        positive when conventional current flows source->drain, i.e. the
        sign is such that a positive value always means current into the
        ``vd`` terminal for NMOS and out of it for PMOS is consistent with
        ``sign * current``).

        The device is treated as symmetric: if the normalised vds is
        negative, drain and source roles are swapped and the current
        negated, so the function is continuous and odd in vds.
        """
        s = self.sign
        vg = s * np.asarray(vg, dtype=float)
        vd = s * np.asarray(vd, dtype=float)
        vs = s * np.asarray(vs, dtype=float)
        vb = s * np.asarray(vb, dtype=float)

        vds = vd - vs
        forward = vds >= 0.0
        # Forward orientation: source is the lower terminal.
        i_fwd = self._ids_normalized(vg - vs, np.maximum(vds, 0.0), vs - vb)
        # Reverse orientation: swap drain and source.
        i_rev = self._ids_normalized(vg - vd, np.maximum(-vds, 0.0), vd - vb)
        return np.where(forward, i_fwd, -i_rev)

    def on_current(self, vdd: float, vbody: float = 0.0) -> np.ndarray:
        """Saturation on-current [A] at full gate and drain drive.

        ``vbody`` is the *terminal* body voltage relative to the source
        rail (positive = forward body bias for NMOS).
        """
        if self.polarity == "nmos":
            return self.current(vg=vdd, vd=vdd, vs=0.0, vb=vbody)
        return self.current(vg=0.0, vd=0.0, vs=vdd, vb=vdd - vbody)

    def subthreshold_current(
        self, vds: ArrayLike, vsb: ArrayLike = 0.0
    ) -> np.ndarray:
        """Off-state (vgs = 0) channel leakage [A] at normalised biases."""
        return self._ids_normalized(0.0, vds, vsb)
