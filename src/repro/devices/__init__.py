"""Compact device models: EKV-style MOSFET and leakage components."""

from repro.devices.factory import make_mosfet, make_nmos, make_pmos
from repro.devices.leakage import (
    gate_leakage,
    junction_leakage,
    junction_leakage_magnitude,
    subthreshold_leakage,
)
from repro.devices.mosfet import MOSFET

__all__ = [
    "MOSFET",
    "make_mosfet",
    "make_nmos",
    "make_pmos",
    "subthreshold_leakage",
    "gate_leakage",
    "junction_leakage",
    "junction_leakage_magnitude",
]
