"""Convenience constructors binding device cards to a technology."""

from __future__ import annotations

from repro.devices.mosfet import ArrayLike, MOSFET
from repro.technology.parameters import TechnologyParameters


def make_mosfet(
    tech: TechnologyParameters,
    polarity: str,
    width: float,
    length: float | None = None,
    dvt: ArrayLike = 0.0,
) -> MOSFET:
    """Instantiate a :class:`MOSFET` from a technology card.

    Args:
        tech: technology card supplying the model parameters.
        polarity: ``"nmos"`` or ``"pmos"``.
        width: channel width [m].
        length: channel length [m]; defaults to the technology's drawn
            length.
        dvt: threshold shift [V] — inter-die corner plus intra-die sample;
            scalar or array.
    """
    return MOSFET(
        params=tech.device(polarity),
        width=width,
        length=length if length is not None else tech.length,
        cox=tech.cox,
        temperature=tech.temperature,
        polarity=polarity,
        dvt=dvt,
    )


def make_nmos(
    tech: TechnologyParameters,
    width: float,
    length: float | None = None,
    dvt: ArrayLike = 0.0,
) -> MOSFET:
    """Instantiate an NMOS device from a technology card."""
    return make_mosfet(tech, "nmos", width, length, dvt)


def make_pmos(
    tech: TechnologyParameters,
    width: float,
    length: float | None = None,
    dvt: ArrayLike = 0.0,
) -> MOSFET:
    """Instantiate a PMOS device from a technology card."""
    return make_mosfet(tech, "pmos", width, length, dvt)
