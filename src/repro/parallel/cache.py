"""Disk-backed, fingerprint-keyed result cache.

Every expensive artifact in the statistics stack (calibrated criteria,
interpolated probability tables) is a deterministic function of a small
set of inputs: the technology card, the failure criteria, the sampling
parameters, the evaluation grid.  The cache therefore keys each stored
result by a SHA-256 fingerprint of the *complete* input payload —
change any field anywhere (a Pelgrom coefficient, a sample count, a
grid node) and the key changes, so stale results can never be served.

Files are plain JSON, human-inspectable and safe to commit; each file
embeds the key payload it was computed from, and :meth:`ResultCache.get`
verifies the stored payload matches before returning (a truncated-hash
collision or a hand-edited file degrades to a miss, never to silent
corruption).
"""

from __future__ import annotations

import json
import pathlib

from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("parallel.cache")

#: Format version written into every cache file.
_FORMAT = 1


def fingerprint(payload: dict) -> str:
    """A stable hex digest of a JSON-serialisable key payload.

    The payload is canonicalised (sorted keys, no whitespace, floats
    via ``default=float`` for numpy scalars) so logically equal payloads
    always hash identically across processes and platforms.
    """
    import hashlib

    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=float
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class ResultCache:
    """JSON result store under one directory, keyed by fingerprints.

    Args:
        cache_dir: directory to store cache files in (created if
            missing).  Safe to share between runs and processes —
            writes are atomic (write-to-temp then rename).

    Attributes:
        hits / misses: lookup counters for this instance (diagnostic;
            the warm/cold benchmark asserts on them).
    """

    def __init__(self, cache_dir: str | pathlib.Path) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache_dir {self.cache_dir} exists and is not a directory"
            ) from None
        self.hits = 0
        self.misses = 0

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.cache_dir / f"{kind}-{key}.json"

    def _miss(self, kind: str, key: str, reason: str) -> None:
        self.misses += 1
        incr("cache.misses")
        _log.debug("cache.miss", kind=kind, key=key, reason=reason)

    def get(self, kind: str, key_payload: dict) -> dict | None:
        """The stored value for ``key_payload``, or None on a miss."""
        key = fingerprint(key_payload)
        path = self._path(kind, key)
        if not path.exists():
            self._miss(kind, key, "absent")
            return None
        try:
            stored = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self._miss(kind, key, "unreadable")
            return None
        if (
            stored.get("format") != _FORMAT
            or stored.get("kind") != kind
            or stored.get("key") != _roundtrip(key_payload)
        ):
            self._miss(kind, key, "key-mismatch")
            return None
        self.hits += 1
        incr("cache.hits")
        _log.info("cache.hit", kind=kind, key=key)
        return stored["value"]

    def put(self, kind: str, key_payload: dict, value: dict) -> pathlib.Path:
        """Store ``value`` under ``key_payload``; returns the file path."""
        key = fingerprint(key_payload)
        path = self._path(kind, key)
        incr("cache.puts")
        _log.info("cache.put", kind=kind, key=key)
        payload = {
            "format": _FORMAT,
            "kind": kind,
            "key": _roundtrip(key_payload),
            "value": value,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2, default=float))
        tmp.replace(path)
        return path


def _roundtrip(payload: dict) -> dict:
    """``payload`` as it looks after a JSON round-trip.

    Stored keys are compared against freshly built ones, which may
    contain numpy scalars or tuples; normalising both sides through
    JSON makes the equality check type-exact.
    """
    return json.loads(json.dumps(payload, default=float))
