"""Disk-backed, fingerprint-keyed, corruption-proof result cache.

Every expensive artifact in the statistics stack (calibrated criteria,
interpolated probability tables) is a deterministic function of a small
set of inputs: the technology card, the failure criteria, the sampling
parameters, the evaluation grid.  The cache therefore keys each stored
result by a SHA-256 fingerprint of the *complete* input payload —
change any field anywhere (a Pelgrom coefficient, a sample count, a
grid node) and the key changes, so stale results can never be served.

Files are plain JSON, human-inspectable and safe to commit.  Each file
is a sealed :mod:`repro.durable` envelope: written atomically
(temp-file + rename), carrying an embedded SHA-256 checksum of its own
body and a format-version field, and re-embedding the key payload it
was computed from.  :meth:`ResultCache.get` verifies all three before
returning — a truncated file, a torn write, a hand-edit, or a
format-version mismatch is *quarantined* to a ``<name>.corrupt-N``
sibling (counter ``cache.quarantined``) and degrades to a miss, never
to an exception or silent corruption.
"""

from __future__ import annotations

import json
import pathlib

from repro import durable
from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("parallel.cache")

#: Format version written into every cache file.  Version 2 added the
#: embedded checksum; version-1 files (pre-checksum) are treated as
#: unverifiable and quarantined on read.
_FORMAT = 2


def fingerprint(payload: dict) -> str:
    """A stable hex digest of a JSON-serialisable key payload.

    The payload is canonicalised (sorted keys, no whitespace, floats
    via ``default=float`` for numpy scalars) so logically equal payloads
    always hash identically across processes and platforms.
    """
    import hashlib

    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=float
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


class ResultCache:
    """JSON result store under one directory, keyed by fingerprints.

    Args:
        cache_dir: directory to store cache files in (created if
            missing).  Safe to share between runs and processes —
            writes are atomic (write-to-temp then rename) and reads
            verify checksums before trusting anything.

    Attributes:
        hits / misses: lookup counters for this instance (diagnostic;
            the warm/cold benchmark asserts on them).
        quarantined: corrupt entries moved aside by this instance.
    """

    def __init__(self, cache_dir: str | pathlib.Path) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache_dir {self.cache_dir} exists and is not a directory"
            ) from None
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, kind: str, key: str) -> pathlib.Path:
        return self.cache_dir / f"{kind}-{key}.json"

    def _miss(self, kind: str, key: str, reason: str) -> None:
        self.misses += 1
        incr("cache.misses")
        _log.debug("cache.miss", kind=kind, key=key, reason=reason)

    def _quarantine(
        self, path: pathlib.Path, kind: str, key: str, reason: str
    ) -> None:
        """Move a bad entry aside and count it; reads see a miss."""
        self.quarantined += 1
        incr("cache.quarantined")
        moved = durable.quarantine(path)
        _log.warning(
            "cache.quarantined",
            kind=kind,
            key=key,
            reason=reason,
            moved_to=str(moved) if moved else None,
        )
        self._miss(kind, key, f"quarantined: {reason}")

    def get(self, kind: str, key_payload: dict) -> dict | None:
        """The stored value for ``key_payload``, or None on a miss.

        *Every* read failure — unreadable bytes, malformed JSON, a
        missing or mismatched checksum, a format-version mismatch, a
        missing value field — is a counted miss (with the bad file
        quarantined), never an exception.
        """
        key = fingerprint(key_payload)
        path = self._path(kind, key)
        if not path.exists():
            self._miss(kind, key, "absent")
            return None
        try:
            stored = durable.read_sealed(path)
        except durable.CorruptStateError as exc:
            self._quarantine(path, kind, key, str(exc))
            return None
        if stored.get("format") != _FORMAT:
            self._quarantine(
                path, kind, key,
                f"format {stored.get('format')!r} != {_FORMAT}",
            )
            return None
        if "value" not in stored:
            self._quarantine(path, kind, key, "no value field")
            return None
        if (
            stored.get("kind") != kind
            or stored.get("key") != _roundtrip(key_payload)
        ):
            # A *valid* entry for some other payload (truncated-hash
            # collision): leave it alone, it is not corrupt.
            self._miss(kind, key, "key-mismatch")
            return None
        self.hits += 1
        incr("cache.hits")
        _log.info("cache.hit", kind=kind, key=key)
        return stored["value"]

    def put(self, kind: str, key_payload: dict, value: dict) -> pathlib.Path:
        """Store ``value`` under ``key_payload``; returns the file path.

        The write is atomic and the envelope sealed (see module doc);
        a torn or corrupted write therefore surfaces on the *next read*
        as a quarantine + miss, never as a wrong result.
        """
        key = fingerprint(key_payload)
        path = self._path(kind, key)
        incr("cache.puts")
        _log.info("cache.put", kind=kind, key=key)
        payload = {
            "format": _FORMAT,
            "kind": kind,
            "key": _roundtrip(key_payload),
            "value": value,
        }
        return durable.write_sealed(path, payload)


def _roundtrip(payload: dict) -> dict:
    """``payload`` as it looks after a JSON round-trip.

    Stored keys are compared against freshly built ones, which may
    contain numpy scalars or tuples; normalising both sides through
    JSON makes the equality check type-exact.
    """
    return json.loads(json.dumps(payload, default=float))
