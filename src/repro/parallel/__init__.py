"""Deterministic fan-out execution and result caching.

The statistics stack evaluates many independent Monte-Carlo points
(one per (corner, bias) grid node, one per die in a lot).  This package
supplies the two pieces that let those sweeps saturate the hardware
without changing a single estimate:

* :class:`~repro.parallel.executor.ParallelExecutor` — an
  order-preserving process-pool map whose results are bit-identical at
  any worker count, because every task carries its own seed material
  (see :func:`~repro.parallel.executor.spawn_seeds`);
* :class:`~repro.parallel.cache.ResultCache` — a disk-backed JSON store
  keyed by a fingerprint of *everything* that determines a result
  (technology card, criteria, sampling parameters, grid), so a warm
  rerun of a benchmark or example loads tables instead of recomputing
  them, and any parameter change invalidates cleanly.

Both are fault-tolerant: the executor retries crashed/hung/failed
tasks under a :class:`~repro.parallel.executor.RetryPolicy` (respawning
a broken pool once, then degrading to the serial path) and the cache
quarantines corrupt or torn entries instead of raising.  See
``docs/performance.md`` for the execution model and cache layout, and
``docs/robustness.md`` for the failure-mode catalogue.
"""

from repro.parallel.cache import ResultCache, fingerprint
from repro.parallel.executor import (
    ParallelExecutor,
    RetryPolicy,
    TaskError,
    TaskFailure,
    spawn_seeds,
)

__all__ = [
    "ParallelExecutor",
    "ResultCache",
    "RetryPolicy",
    "TaskError",
    "TaskFailure",
    "fingerprint",
    "spawn_seeds",
]
