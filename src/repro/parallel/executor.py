"""Order-preserving, deterministic process-pool execution.

The contract that makes ``workers=N`` bit-identical to ``workers=1``:
a task function must be a *pure function of its task payload* — any
randomness it consumes must come from seed material embedded in the
payload (a :class:`numpy.random.SeedSequence` or integers derived from
the task's key fields), never from shared mutable state or the worker's
identity.  Under that contract the executor is free to run tasks
anywhere, in any order, and reassemble results by position.

``workers=1`` never touches :mod:`concurrent.futures` at all: tasks run
inline in the calling process, so tests stay hermetic and the serial
path has zero pickling overhead.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import observability
from repro.observability.log import get_logger

_log = get_logger("parallel.executor")


def _observed_task(payload: tuple) -> tuple:
    """Worker entry point wrapping a task with telemetry capture.

    Runs the task inside a fresh per-task collection scope and returns
    ``(result, telemetry_snapshot)`` so the parent can merge each
    task's metrics and trace subtree back into its own collectors
    (:func:`repro.observability.merge_worker`).  Only used when the
    parent had observability enabled at fan-out time.
    """
    fn, task = payload
    observability.worker_begin()
    result = fn(task)
    return result, observability.worker_snapshot()


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` statistically independent child seeds of ``seed``.

    Each child is stable across processes and platforms (pure integer
    arithmetic inside :class:`numpy.random.SeedSequence`), so embedding
    ``spawn_seeds(seed, n)[i]`` into task ``i``'s payload gives every
    task its own reproducible stream regardless of which worker runs it.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return np.random.SeedSequence(seed).spawn(n)


class ParallelExecutor:
    """Maps a function over tasks, optionally across processes.

    Args:
        workers: process count.  ``1`` (the default) executes inline in
            the calling process — no pool, no pickling; ``None`` or any
            value above the machine's core count clamps to
            ``os.cpu_count()``.
        chunksize: tasks handed to a worker per dispatch; defaults to
            a heuristic that keeps every worker busy with at most
            ~4 dispatch rounds.

    The executor holds no pool between calls (a pool is created and
    torn down inside :meth:`map`), so instances are cheap, picklable,
    and safe to store on long-lived objects like
    :class:`~repro.experiments.context.ExperimentContext`.
    """

    def __init__(self, workers: int | None = 1, chunksize: int | None = None) -> None:
        cores = os.cpu_count() or 1
        if workers is None:
            workers = cores
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = min(int(workers), cores) if workers > 1 else 1
        #: The worker count actually requested (before core clamping);
        #: kept so configuration round-trips through repr/logs.
        self.requested_workers = int(workers)
        self.chunksize = chunksize

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.requested_workers})"

    @property
    def is_serial(self) -> bool:
        """True when :meth:`map` runs inline (no subprocesses)."""
        return self.requested_workers <= 1

    def _chunksize(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return max(1, int(self.chunksize))
        return max(1, n_tasks // (self.workers * 4))

    def map(self, fn: Callable, tasks: Iterable) -> list:
        """``[fn(t) for t in tasks]``, fanned out when ``workers > 1``.

        Results are returned in task order.  ``fn`` and every task must
        be picklable when ``workers > 1`` (``fn`` must be a module-level
        function, not a lambda or closure).
        """
        task_list: Sequence = list(tasks)
        observability.incr("parallel.map_calls")
        observability.incr("parallel.tasks", len(task_list))
        if self.is_serial or len(task_list) <= 1:
            return [fn(task) for task in task_list]
        chunksize = self._chunksize(len(task_list))
        _log.info(
            "parallel.map",
            tasks=len(task_list),
            workers=self.workers,
            chunksize=chunksize,
        )
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            if not observability.enabled():
                return list(pool.map(fn, task_list, chunksize=chunksize))
            # Telemetry round-trip: each task runs in its own collection
            # scope and ships its snapshot home alongside its result.
            results = []
            pairs = pool.map(
                _observed_task,
                [(fn, task) for task in task_list],
                chunksize=chunksize,
            )
            for result, snap in pairs:
                observability.merge_worker(snap)
                results.append(result)
            return results
