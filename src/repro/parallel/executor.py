"""Order-preserving, deterministic, *fault-tolerant* process execution.

The contract that makes ``workers=N`` bit-identical to ``workers=1``:
a task function must be a *pure function of its task payload* — any
randomness it consumes must come from seed material embedded in the
payload (a :class:`numpy.random.SeedSequence` or integers derived from
the task's key fields), never from shared mutable state or the worker's
identity.  Under that contract the executor is free to run tasks
anywhere, in any order, *retry them after a crash*, and reassemble
results by position: a retried task returns exactly what its first
attempt would have.

Resilience (see ``docs/robustness.md``):

* every task attempt is bounded by a :class:`RetryPolicy` — per-task
  timeout, ``max_attempts`` tries, exponential backoff whose jitter is
  seeded from the (task index, attempt) pair, not wall clock;
* a dead worker (``BrokenProcessPool``) or a hung task poisons the
  pool: outstanding successful results are harvested, the pool is
  respawned once, and a second break degrades the remaining tasks to
  the serial inline path with a warning;
* exhausted retries surface as a :class:`TaskError` (or as
  :class:`TaskFailure` placeholders with ``return_failures=True``), so
  callers can distinguish "retried and succeeded" from "gave up";
* everything is counted: ``executor.retries``,
  ``executor.task_failures``, ``executor.pool_respawns``, and
  ``executor.serial_degrades`` in the ``repro.telemetry/1`` snapshot,
  mirrored as instance attributes for telemetry-off tests.

``workers=1`` never touches :mod:`concurrent.futures` at all: tasks run
inline in the calling process, so tests stay hermetic and the serial
path has zero pickling overhead.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence

import numpy as np

from repro import faults, observability
from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("parallel.executor")

#: Internal marker for a not-yet-computed result slot.
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Bounds on per-task failure handling.

    Attributes:
        max_attempts: total tries per task (1 = no retry).
        timeout: seconds a fanned-out task may run before it is
            declared hung (None = wait forever).  Enforced on the pool
            path only — an inline task cannot be preempted.
        backoff_base: first-retry delay [s]; doubles per attempt.
        backoff_max: ceiling on any single delay [s].
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def backoff_delay(self, task_index: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (>=1) of task ``task_index``.

        Exponential with jitter seeded from the (index, attempt) pair —
        the schedule is a pure function of the task key, so retried
        runs are reproducible down to their sleep pattern.
        """
        jitter = random.Random(f"retry:{task_index}:{attempt}").random()
        delay = self.backoff_base * (2 ** (attempt - 1))
        return min(self.backoff_max, delay) * (0.5 + jitter)


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retry budget.

    Returned in-place of a result by ``map(..., return_failures=True)``
    and carried by :class:`TaskError` otherwise.
    """

    index: int
    attempts: int
    kind: str  # "exception" | "timeout" | "worker-crash"
    error: str

    def __str__(self) -> str:
        return (
            f"task {self.index} gave up after {self.attempts} attempt(s) "
            f"[{self.kind}]: {self.error}"
        )


class TaskError(RuntimeError):
    """One or more tasks failed after exhausting their retry budget."""

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = list(failures)
        first = self.failures[0]
        extra = (
            f" (and {len(self.failures) - 1} more)"
            if len(self.failures) > 1
            else ""
        )
        super().__init__(f"{first}{extra}")


def _pool_task(payload: tuple) -> tuple:
    """Worker entry point: apply any injected fault, run, snapshot.

    ``payload`` is ``(fn, task, action, collect, run_id)`` where
    ``action`` is the fault directive the parent computed for this
    attempt (or None), ``collect`` says whether the parent wants a
    telemetry snapshot shipped home alongside the result, and
    ``run_id`` is the run scope active at the fan-out call site (or
    None) — installed here so worker-side log events carry the same
    ``run_id=`` stamp as the parent's, across fork and spawn alike.
    """
    fn, task, action, collect, run_id = payload
    faults.apply_task_action(action, in_worker=True)
    if not collect:
        observability.context.enter_worker_scope(run_id)
        return fn(task), None
    observability.worker_begin(run_id)
    result = fn(task)
    return result, observability.worker_snapshot()


def spawn_seeds(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` statistically independent child seeds of ``seed``.

    Each child is stable across processes and platforms (pure integer
    arithmetic inside :class:`numpy.random.SeedSequence`), so embedding
    ``spawn_seeds(seed, n)[i]`` into task ``i``'s payload gives every
    task its own reproducible stream regardless of which worker runs
    it — and regardless of how many times it was retried.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return np.random.SeedSequence(seed).spawn(n)


class ParallelExecutor:
    """Maps a function over tasks, optionally across processes.

    Args:
        workers: process count.  ``1`` (the default) executes inline in
            the calling process — no pool, no pickling; ``None`` or any
            value above the machine's core count clamps to
            ``os.cpu_count()``.
        chunksize: retained for API compatibility; the resilient map
            dispatches tasks individually so every attempt is
            independently retryable.
        retry: failure-handling bounds (default :class:`RetryPolicy`:
            3 attempts, no timeout).
        fault_plan: a chaos-harness plan consulted per task attempt;
            defaults to the process-wide plan armed via
            :func:`repro.faults.install`.

    Attributes:
        retries / task_failures / pool_respawns / serial_degrades:
            lifetime resilience counters for this instance (also
            mirrored into the telemetry registry when collection is
            on).

    The executor holds no pool between calls (a pool is created and
    torn down inside :meth:`map`), so instances are cheap, picklable,
    and safe to store on long-lived objects like
    :class:`~repro.experiments.context.ExperimentContext`.
    """

    def __init__(
        self,
        workers: int | None = 1,
        chunksize: int | None = None,
        retry: RetryPolicy | None = None,
        fault_plan=None,
    ) -> None:
        cores = os.cpu_count() or 1
        if workers is None:
            workers = cores
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = min(int(workers), cores) if workers > 1 else 1
        #: The worker count actually requested (before core clamping);
        #: kept so configuration round-trips through repr/logs.
        self.requested_workers = int(workers)
        self.chunksize = chunksize
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.retries = 0
        self.task_failures = 0
        self.pool_respawns = 0
        self.serial_degrades = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(workers={self.requested_workers})"

    @property
    def is_serial(self) -> bool:
        """True when :meth:`map` runs inline (no subprocesses)."""
        return self.requested_workers <= 1

    def _plan(self):
        return (
            self.fault_plan
            if self.fault_plan is not None
            else faults.active_plan()
        )

    def _task_action(self, index: int) -> dict | None:
        plan = self._plan()
        return plan.task_action(index) if plan is not None else None

    # ------------------------------------------------------------------
    # Failure accounting shared by the inline and pool paths
    # ------------------------------------------------------------------
    def _note_retry(self, index: int, attempt: int, kind: str, exc) -> float:
        self.retries += 1
        incr("executor.retries")
        delay = self.retry.backoff_delay(index, attempt)
        _log.warning(
            "executor.task_retry",
            task=index,
            attempt=attempt,
            kind=kind,
            error=repr(exc),
            backoff_s=round(delay, 3),
        )
        return delay

    def _note_failure(self, index: int, attempts: int, kind: str, exc):
        failure = TaskFailure(
            index=index, attempts=attempts, kind=kind, error=repr(exc)
        )
        self.task_failures += 1
        incr("executor.task_failures")
        _log.warning("executor.task_failed", task=index, error=str(failure))
        return failure

    # ------------------------------------------------------------------
    # Inline (serial) path
    # ------------------------------------------------------------------
    def _run_inline(self, fn: Callable, task, index: int):
        """One task inline, with retries; returns result or TaskFailure."""
        attempt = 0
        while True:
            action = self._task_action(index)
            try:
                faults.apply_task_action(action, in_worker=False)
                return fn(task)
            except Exception as exc:
                attempt += 1
                if attempt >= self.retry.max_attempts:
                    return self._note_failure(index, attempt, "exception", exc)
                time.sleep(self._note_retry(index, attempt, "exception", exc))

    def _map_inline(
        self, fn: Callable, task_list: Sequence, return_failures: bool
    ) -> list:
        results = []
        for index, task in enumerate(task_list):
            outcome = self._run_inline(fn, task, index)
            if isinstance(outcome, TaskFailure) and not return_failures:
                raise TaskError([outcome])
            results.append(outcome)
        return results

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------
    def _map_pool(
        self, fn: Callable, task_list: Sequence, return_failures: bool
    ) -> list:
        n = len(task_list)
        collect = observability.enabled()
        # The run scope active *here* owns every task of this map call;
        # its id travels in the payload so worker logs correlate, and
        # snapshots merged back on this thread land in the same scope.
        run_id = observability.current_run_id()
        results: list = [_UNSET] * n
        attempts = [0] * n
        pending = set(range(n))
        failures: dict[int, TaskFailure] = {}
        pool_breaks = 0
        pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while pending:
                futures = {}
                submit_broken = False
                for i in sorted(pending):
                    try:
                        futures[i] = pool.submit(
                            _pool_task,
                            (
                                fn, task_list[i], self._task_action(i),
                                collect, run_id,
                            ),
                        )
                    except BrokenProcessPool:
                        # A worker died while this round was still being
                        # submitted; stop here — the unsent tasks stay
                        # pending and uncharged for the next round.
                        submit_broken = True
                        break
                backoffs: list[float] = []
                broken = False
                charged: set[int] = set()
                for i in sorted(futures):
                    if broken:
                        break
                    try:
                        value, snap = futures[i].result(
                            timeout=self.retry.timeout
                        )
                    except FuturesTimeoutError:
                        broken = True
                        charged.add(i)
                        self._attempt_failed(
                            i, "timeout",
                            TimeoutError(
                                f"no result within {self.retry.timeout}s"
                            ),
                            attempts, pending, failures, backoffs,
                        )
                    except BrokenProcessPool as exc:
                        broken = True
                        charged.add(i)
                        self._attempt_failed(
                            i, "worker-crash", exc,
                            attempts, pending, failures, backoffs,
                        )
                    except Exception as exc:
                        charged.add(i)
                        self._attempt_failed(
                            i, "exception", exc,
                            attempts, pending, failures, backoffs,
                        )
                    else:
                        if snap is not None:
                            observability.merge_worker(snap)
                        results[i] = value
                        pending.discard(i)
                broken = broken or submit_broken
                if broken:
                    # Harvest siblings that finished before the break,
                    # charge one failed attempt to the rest (a future
                    # that cancels cleanly never ran: no charge).
                    for j, fut in futures.items():
                        if j not in pending or j in charged or fut.cancel():
                            continue
                        try:
                            value, snap = fut.result(timeout=0)
                        except Exception as exc:
                            self._attempt_failed(
                                j, "worker-crash", exc,
                                attempts, pending, failures, backoffs,
                            )
                        else:
                            if snap is not None:
                                observability.merge_worker(snap)
                            results[j] = value
                            pending.discard(j)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool_breaks += 1
                    if failures and not return_failures:
                        raise TaskError(sorted(
                            failures.values(), key=lambda f: f.index
                        ))
                    if not pending:
                        break
                    if pool_breaks > 1:
                        # Second break: stop trusting pools entirely.
                        self.serial_degrades += 1
                        incr("executor.serial_degrades")
                        _log.warning(
                            "executor.degraded_serial",
                            remaining=len(pending),
                            reason="process pool broke twice",
                        )
                        for i in sorted(pending):
                            outcome = self._run_inline(fn, task_list[i], i)
                            if isinstance(outcome, TaskFailure):
                                failures[i] = outcome
                                if not return_failures:
                                    raise TaskError([outcome])
                            else:
                                results[i] = outcome
                        pending.clear()
                        break
                    self.pool_respawns += 1
                    incr("executor.pool_respawns")
                    _log.warning(
                        "executor.pool_respawn", remaining=len(pending)
                    )
                    pool = ProcessPoolExecutor(max_workers=self.workers)
                elif failures and not return_failures:
                    raise TaskError(sorted(
                        failures.values(), key=lambda f: f.index
                    ))
                if pending and backoffs:
                    time.sleep(max(backoffs))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        for i, failure in failures.items():
            results[i] = failure
        return results

    def _attempt_failed(
        self, index, kind, exc, attempts, pending, failures, backoffs
    ) -> None:
        """Charge one failed attempt; retire the task when exhausted."""
        attempts[index] += 1
        if attempts[index] >= self.retry.max_attempts:
            failures[index] = self._note_failure(
                index, attempts[index], kind, exc
            )
            pending.discard(index)
        else:
            backoffs.append(
                self._note_retry(index, attempts[index], kind, exc)
            )

    def map(
        self,
        fn: Callable,
        tasks: Iterable,
        return_failures: bool = False,
    ) -> list:
        """``[fn(t) for t in tasks]``, fanned out when ``workers > 1``.

        Results are returned in task order.  ``fn`` and every task must
        be picklable when ``workers > 1`` (``fn`` must be a module-level
        function, not a lambda or closure).

        Failed attempts are retried per the executor's
        :class:`RetryPolicy`; a task that exhausts its budget raises
        :class:`TaskError` — or, with ``return_failures=True``, leaves
        a :class:`TaskFailure` in its result slot so a caller can keep
        the survivors.
        """
        task_list: Sequence = list(tasks)
        observability.incr("parallel.map_calls")
        observability.incr("parallel.tasks", len(task_list))
        if self.is_serial or len(task_list) <= 1:
            return self._map_inline(fn, task_list, return_failures)
        _log.info(
            "parallel.map",
            tasks=len(task_list),
            workers=self.workers,
            max_attempts=self.retry.max_attempts,
            timeout=self.retry.timeout,
        )
        return self._map_pool(fn, task_list, return_failures)
