"""Corruption-proof persistence: atomic, checksummed JSON envelopes.

Every durable artifact in the stack (result-cache entries, persisted
criteria/tables, checkpoints, benchmark-history records) goes through
this module, which supplies the three guarantees a killed process or a
torn disk write must not violate:

* **atomicity** — :func:`atomic_write_text` writes to a unique
  temporary sibling and renames it into place, so a reader never sees
  a half-written file under the final name;
* **integrity** — :func:`seal` embeds a SHA-256 digest of the
  payload's canonical JSON form; :func:`verify` (and
  :func:`read_sealed`) recompute it, so truncation, bit rot, or a
  hand-edit is *detected*, not silently interpolated into an analysis;
* **containment** — :func:`quarantine` moves a bad file to a
  ``<name>.corrupt-N`` sibling so it stops matching reads but stays on
  disk for a post-mortem.

The chaos harness hooks in here: when a
:class:`~repro.faults.FaultPlan` is armed, :func:`atomic_write_text`
asks it whether this write should be torn (truncated mid-payload) or
corrupted (payload mangled), which is how the quarantine path is
exercised deterministically in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro import faults
from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("durable")

#: The embedded-digest field name inside a sealed payload.
SHA_FIELD = "sha256"


class CorruptStateError(ValueError):
    """A durable file failed parsing, shape, or checksum verification."""


def canonical_json(payload: dict) -> str:
    """The canonical (sorted, compact) JSON text a digest is taken over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=float
    )


def digest(payload: dict) -> str:
    """SHA-256 hex digest of ``payload`` (ignoring any embedded digest)."""
    body = {k: v for k, v in payload.items() if k != SHA_FIELD}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def seal(payload: dict) -> dict:
    """``payload`` with its digest embedded under :data:`SHA_FIELD`."""
    return {**payload, SHA_FIELD: digest(payload)}


def verify(payload: dict) -> None:
    """Raise :class:`CorruptStateError` unless the embedded digest holds."""
    if not isinstance(payload, dict):
        raise CorruptStateError(
            f"expected a JSON object, got {type(payload).__name__}"
        )
    stored = payload.get(SHA_FIELD)
    if stored is None:
        raise CorruptStateError("no embedded checksum")
    actual = digest(payload)
    if stored != actual:
        raise CorruptStateError(
            f"checksum mismatch (stored {stored[:12]}..., "
            f"actual {actual[:12]}...)"
        )


def atomic_write_text(path: str | pathlib.Path, text: str) -> pathlib.Path:
    """Write ``text`` to ``path`` via a unique temp file and rename.

    The temporary sibling carries the writing PID, so two processes
    sharing a cache directory never clobber each other's in-flight
    writes.  An armed fault plan may deterministically tear (truncate)
    or corrupt (mangle) the payload before the rename — the rename
    itself always happens, because the failure mode under test is a
    *bad* file appearing under the final name, not a missing one.
    """
    path = pathlib.Path(path)
    plan = faults.active_plan()
    if plan is not None:
        action = plan.write_action(path)
        if action == "torn_write":
            text = text[: max(1, len(text) // 2)]
            incr("faults.torn_writes")
        elif action == "corrupt_write":
            cut = max(1, len(text) // 2)
            text = text[:cut] + "\x00CORRUPT\x00" + text[cut:]
            incr("faults.corrupt_writes")
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text)
    tmp.replace(path)
    return path


def write_sealed(path: str | pathlib.Path, payload: dict) -> pathlib.Path:
    """Seal ``payload`` and write it atomically as indented JSON."""
    return atomic_write_text(
        path, json.dumps(seal(payload), indent=2, default=float)
    )


def read_sealed(path: str | pathlib.Path) -> dict:
    """Read and verify a sealed file; raise on any integrity failure.

    Raises:
        CorruptStateError: unreadable bytes, malformed JSON, a
            non-object payload, a missing digest, or a digest mismatch.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CorruptStateError(f"unreadable: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptStateError(f"malformed JSON: {exc}") from exc
    verify(payload)
    return payload


def quarantine(path: str | pathlib.Path) -> pathlib.Path | None:
    """Move a bad file to the first free ``<name>.corrupt-N`` sibling.

    Returns the quarantine path, or ``None`` when the file vanished
    (another process already dealt with it — not an error).
    """
    path = pathlib.Path(path)
    counter = 1
    while True:
        target = path.with_name(f"{path.name}.corrupt-{counter}")
        if not target.exists():
            break
        counter += 1
    try:
        path.replace(target)
    except OSError:
        return None
    _log.warning("durable.quarantined", path=str(path), moved_to=str(target))
    return target
