"""Bounded event journal for the job server.

Every job lifecycle transition (and periodic progress while running)
becomes one :class:`Event` in a fixed-capacity ring buffer owned by the
:class:`~repro.service.jobs.JobManager`.  The journal powers three
things:

* the **SSE streams** (``GET /v1/events``, ``GET /v1/jobs/{id}/events``)
  — clients replay from any sequence number via ``Last-Event-ID`` and
  then follow live appends;
* the loadgen ``--follow`` mode — event-driven completion instead of
  polling ``GET /v1/jobs/{id}``;
* the **flight recorder** — when a job fails, the ring as it stood is
  dumped to disk next to the failure, preserving the lead-up that a
  post-hoc status query cannot reconstruct.

Capacity is a hard bound: the oldest event is evicted on overflow and
``service.events_dropped`` counts the loss (the bench ``service``
workload gates on it staying zero under the standard burst).  Sequence
numbers are global, monotonically increasing from 1, and never reused,
so a resuming client can always tell replay from gap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.observability import _state
from repro.observability.metrics import incr

#: Event types the manager emits, in lifecycle order.  ``job.progress``
#: repeats while a job runs; ``job.completed`` / ``job.failed`` /
#: ``job.cancelled`` are terminal for their job.  ``job.recovered``
#: marks a job re-enqueued from the durable ledger on boot, and
#: ``job.cancel_requested`` marks a running job asked to stop at its
#: next checkpoint boundary.
EVENT_TYPES = (
    "job.accepted",
    "job.recovered",
    "job.deduped",
    "job.started",
    "job.progress",
    "job.cancel_requested",
    "job.completed",
    "job.failed",
    "job.cancelled",
)

#: Event types after which a per-job stream has nothing more to say.
TERMINAL_EVENTS = frozenset({"job.completed", "job.failed", "job.cancelled"})


@dataclass(frozen=True)
class Event:
    """One journal entry (immutable once appended)."""

    seq: int
    ts: float
    type: str
    job_id: str | None
    #: The run this event belongs to (the job id for job lifecycle
    #: events — the manager runs every job as run_id == job_id).
    run_id: str | None = None
    data: dict = field(default_factory=dict)

    def wire(self) -> dict:
        """The JSON payload carried in an SSE ``data:`` line."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "job_id": self.job_id,
            "run_id": self.run_id,
            "data": self.data,
        }


class EventJournal:
    """Fixed-capacity, thread-safe ring of :class:`Event` entries."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque()
        self._lock = threading.Lock()
        self._seq = 0
        #: Events evicted by overflow (also counted in the registry as
        #: ``service.events_dropped``).
        self.dropped = 0

    def append(
        self,
        type_: str,
        job_id: str | None = None,
        run_id: str | None = None,
        **data,
    ) -> Event:
        """Append one event; evicts the oldest when the ring is full.

        ``run_id`` defaults to the run scope active on the appending
        thread (None outside any), so events emitted from inside a
        :class:`~repro.observability.context.RunContext` correlate
        without every call site threading the id through.
        """
        if run_id is None:
            run_id = _state.current_run_id()
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=time.time(),
                type=type_,
                job_id=job_id,
                run_id=run_id,
                data=data,
            )
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
                incr("service.events_dropped")
            self._events.append(event)
        incr("service.events")
        return event

    @property
    def last_seq(self) -> int:
        """The sequence number of the newest event (0 before any)."""
        with self._lock:
            return self._seq

    def after(
        self, last_seq: int = 0, job_id: str | None = None
    ) -> tuple[list[Event], bool]:
        """Buffered events with ``seq > last_seq``, oldest first.

        Args:
            last_seq: the last sequence number the caller has seen
                (``0`` = from the beginning).
            job_id: restrict to one job's events.

        Returns:
            ``(events, truncated)`` — ``truncated`` is True when events
            the caller has not seen were already evicted from the ring
            (the resume has a gap; for per-job streams this is the
            conservative global answer, since eviction does not track
            which job the lost events belonged to).
        """
        with self._lock:
            oldest = self._events[0].seq if self._events else self._seq + 1
            truncated = last_seq + 1 < oldest
            events = [
                event
                for event in self._events
                if event.seq > last_seq
                and (job_id is None or event.job_id == job_id)
            ]
        return events, truncated

    def snapshot(self) -> list[dict]:
        """Every buffered event as wire dicts (the flight-recorder dump)."""
        with self._lock:
            return [event.wire() for event in self._events]
