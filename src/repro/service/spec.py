"""Job-spec validation and identity for the yield-analysis service.

A job spec is the JSON body of ``POST /v1/jobs`` (see
``docs/service.md`` for the wire-format reference).  This module turns
a raw decoded payload into its *normalized* form — every field
validated, every default applied, lists coerced to plain floats — and
derives the job id from it.

The job id **is** the cache fingerprint of the normalized spec
(:func:`repro.parallel.cache.fingerprint` of the canonical JSON), which
is what makes the service's dedupe exact rather than heuristic: two
submissions that would compute the same surface hash to the same job,
regardless of field order or ``1e-5`` vs ``0.00001`` spelling, while
any field that changes the numbers changes the id.

*Execution* knobs are the exception: ``deadline_s`` bounds how long the
service may spend on the job but has no effect on the surface computed,
so it is validated and carried in the normalized spec yet **excluded**
from the fingerprint — resubmitting the same surface with a different
deadline attaches to the in-flight job (which keeps its original
deadline) instead of computing a duplicate.
"""

from __future__ import annotations

from repro.parallel.cache import fingerprint
from repro.stats.rare_event import SAMPLER_NAMES

#: Experiment families the service can run.
SPEC_KINDS = ("table", "hold-surface")

#: Fields common to every kind, with their defaults.
_COMMON_DEFAULTS = {
    "target": 1e-5,
    "calibration_samples": 20_000,
    "analysis_samples": 4_000,
    "sampler": "adaptive-is",
    "table_grid": 9,
    "seed": 2006,
    "deadline_s": None,
}

#: Execution-only fields: validated, carried in the normalized spec,
#: but excluded from the job-id fingerprint (they do not change the
#: computed surface) and never forwarded to the experiment context.
EXECUTION_FIELDS = ("deadline_s",)

#: Upper bound on a per-job deadline (one day).
_MAX_DEADLINE_S = 86_400.0

#: Kind-specific fields with their defaults.
_KIND_DEFAULTS = {
    "table": {"vbody_levels": [0.0]},
    "hold-surface": {
        "corner_points": 5,
        "vsb_levels": [0.0, 0.2, 0.4, 0.6],
    },
}

#: Hard bounds keeping a single job's solver budget sane.
_MAX_SAMPLES = 1_000_000
_MAX_GRID = 33
_MAX_LEVELS = 16


class SpecError(ValueError):
    """A submitted spec is invalid; ``code`` names the error class.

    The HTTP layer maps this 1:1 onto a 400 response whose body is
    ``{"error": {"code": ..., "message": ...}}`` — codes are part of
    the wire format (``invalid-spec``, ``unknown-field``,
    ``unknown-kind``, ``invalid-value``; the transport layer adds
    ``invalid-json`` for undecodable bodies).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _require_number(spec: dict, field: str, lo: float, hi: float) -> float:
    value = spec[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(
            "invalid-value", f"{field} must be a number, got {value!r}"
        )
    value = float(value)
    if not lo <= value <= hi:
        raise SpecError(
            "invalid-value",
            f"{field} must be in [{lo:g}, {hi:g}], got {value:g}",
        )
    return value


def _require_int(spec: dict, field: str, lo: int, hi: int) -> int:
    value = spec[field]
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            "invalid-value", f"{field} must be an integer, got {value!r}"
        )
    if not lo <= value <= hi:
        raise SpecError(
            "invalid-value",
            f"{field} must be in [{lo}, {hi}], got {value}",
        )
    return value


def _require_levels(
    spec: dict,
    field: str,
    lo: float,
    hi: float,
    min_len: int,
    increasing: bool,
) -> list[float]:
    raw = spec[field]
    if not isinstance(raw, list) or not raw:
        raise SpecError(
            "invalid-value", f"{field} must be a non-empty list of numbers"
        )
    if len(raw) < min_len:
        raise SpecError(
            "invalid-value",
            f"{field} needs at least {min_len} entries, got {len(raw)}",
        )
    if len(raw) > _MAX_LEVELS:
        raise SpecError(
            "invalid-value",
            f"{field} allows at most {_MAX_LEVELS} entries, got {len(raw)}",
        )
    levels = []
    for item in raw:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise SpecError(
                "invalid-value",
                f"{field} entries must be numbers, got {item!r}",
            )
        value = float(item)
        if not lo <= value <= hi:
            raise SpecError(
                "invalid-value",
                f"{field} entries must be in [{lo:g}, {hi:g}], got {value:g}",
            )
        levels.append(value)
    if increasing and any(
        b <= a for a, b in zip(levels, levels[1:])
    ):
        raise SpecError(
            "invalid-value", f"{field} must be strictly increasing"
        )
    return levels


def normalize_spec(raw: object) -> dict:
    """Validate a decoded submission body; return the canonical spec.

    Strict by design: unknown fields are rejected (a typo like
    ``"smapler"`` must not silently fall back to the default and
    compute — then cache — the wrong surface), every known field is
    bounds-checked, and defaults are materialised so the normalized
    dict is self-contained.  Raises :class:`SpecError` with a wire
    error code on any violation.
    """
    if not isinstance(raw, dict):
        raise SpecError("invalid-spec", "spec must be a JSON object")
    if "kind" not in raw:
        raise SpecError("invalid-spec", "spec is missing required field 'kind'")
    kind = raw["kind"]
    if kind not in SPEC_KINDS:
        raise SpecError(
            "unknown-kind",
            f"unknown kind {kind!r}; expected one of {list(SPEC_KINDS)}",
        )
    known = set(_COMMON_DEFAULTS) | set(_KIND_DEFAULTS[kind]) | {"kind"}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise SpecError(
            "unknown-field",
            f"unknown field(s) for kind {kind!r}: {', '.join(unknown)}",
        )

    spec: dict = {"kind": kind}
    spec.update(_COMMON_DEFAULTS)
    spec.update(_KIND_DEFAULTS[kind])
    spec.update({k: v for k, v in raw.items() if k != "kind"})

    spec["target"] = _require_number(spec, "target", 1e-12, 0.5)
    spec["calibration_samples"] = _require_int(
        spec, "calibration_samples", 500, _MAX_SAMPLES
    )
    spec["analysis_samples"] = _require_int(
        spec, "analysis_samples", 50, _MAX_SAMPLES
    )
    spec["table_grid"] = _require_int(spec, "table_grid", 4, _MAX_GRID)
    spec["seed"] = _require_int(spec, "seed", 0, 2**31 - 1)
    if spec["deadline_s"] is not None:
        spec["deadline_s"] = _require_number(
            spec, "deadline_s", 0.001, _MAX_DEADLINE_S
        )
    if spec["sampler"] not in SAMPLER_NAMES:
        raise SpecError(
            "invalid-value",
            f"sampler must be one of {list(SAMPLER_NAMES)}, "
            f"got {spec['sampler']!r}",
        )
    if kind == "table":
        spec["vbody_levels"] = _require_levels(
            spec, "vbody_levels", -0.5, 0.5, min_len=1, increasing=True
        )
    else:
        spec["corner_points"] = _require_int(
            spec, "corner_points", 3, _MAX_GRID
        )
        spec["vsb_levels"] = _require_levels(
            spec, "vsb_levels", 0.0, 0.7, min_len=2, increasing=True
        )
    return spec


def spec_fingerprint(spec: dict) -> str:
    """The job id of a normalized spec (24-hex cache fingerprint).

    Execution-only fields (:data:`EXECUTION_FIELDS`) are excluded: the
    id identifies the *surface*, so the same work submitted with a
    different ``deadline_s`` dedupes onto the existing job.
    """
    return fingerprint(
        {k: v for k, v in spec.items() if k not in EXECUTION_FIELDS}
    )


def job_cells(spec: dict) -> int:
    """How many grid-cell estimates the job shards into.

    The unit the progress report counts in: one (corner, bias) Monte-
    Carlo estimate, matching the checkpoint store's cell granularity.
    """
    if spec["kind"] == "table":
        return spec["table_grid"] * len(spec["vbody_levels"])
    return spec["corner_points"] * len(spec["vsb_levels"])
