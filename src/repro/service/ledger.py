"""Durable job ledger: a crash-safe WAL of job lifecycle transitions.

The service's answer to the paper's "detect your own marginal cells"
discipline, applied to its own queue: every accepted job and every
status transition is appended — before the transition is acted on — to
a single append-only JSONL file under ``--state-dir``, each line a
sealed :mod:`repro.durable` envelope flushed and ``fsync``'d before the
append returns.  A SIGKILL at *any* instant therefore leaves a ledger
that names every job the server had promised to run.

On boot :meth:`JobLedger.replay` folds the file into the latest state
per job:

* jobs whose last record is terminal (``completed`` / ``failed`` /
  ``cancelled``) are done — their results live in the result cache, so
  a resubmission is served warm; the ledger does not need them;
* jobs last seen ``accepted`` or ``started`` are *owed*: the manager
  re-enqueues them (counter ``service.jobs_recovered``) and they resume
  through their build checkpoints, bit-identical to an uninterrupted
  run;
* corrupt lines (torn final append) are skipped, never fatal; a job
  whose every record is unusable — e.g. its ``accepted`` line (the only
  one carrying the spec) was torn — is counted as ``service.jobs_lost``
  and surfaced in logs and healthz rather than silently dropped.

After replay the manager *compacts*: the ledger is atomically rewritten
with one fresh ``accepted`` record per live job, so the file's size is
bounded by the live queue, not by service uptime.

Chaos hook: a ``service_crash`` fault spec (site ``ledger.<type>``)
hard-kills the process **after** the matching append is durable —
the exact window the replay protocol exists for.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

from repro import durable, faults
from repro.observability.log import get_logger
from repro.observability.metrics import incr

_log = get_logger("service.ledger")

#: Lifecycle record types, in the order a job emits them.
RECORD_TYPES = ("accepted", "started", "completed", "failed", "cancelled")

#: Record types after which a job owes nothing.
TERMINAL_TYPES = frozenset({"completed", "failed", "cancelled"})

#: Ledger file name under the state directory.
FILENAME = "jobs-ledger.jsonl"

#: Schema tag written into every ledger record.
_FORMAT = 1


class JobLedger:
    """Append-only, sealed, fsync'd job-transition log in one directory.

    Args:
        state_dir: directory holding the ledger (created if missing).
            Safe to share with the checkpoint directory; the ledger is
            a single well-known file inside it.
    """

    def __init__(self, state_dir: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(state_dir)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"state dir {self.directory} exists and is not a directory"
            ) from None
        self.path = self.directory / FILENAME
        self._lock = threading.Lock()

    # -- writing -----------------------------------------------------------
    def record(self, type_: str, job_id: str, **fields: object) -> None:
        """Append one sealed transition record; durable before return.

        The line is flushed and ``fsync``'d so a crash immediately
        after :meth:`record` returns cannot lose it.  ``fields`` carry
        type-specific payload (``accepted`` stores the normalized spec
        and submission count; terminal types store the error, if any).
        """
        if type_ not in RECORD_TYPES:
            raise ValueError(f"unknown ledger record type {type_!r}")
        entry: dict = {
            "format": _FORMAT,
            "type": type_,
            "job_id": job_id,
            "ts": time.time(),
        }
        entry.update(fields)
        line = json.dumps(durable.seal(entry), sort_keys=True, default=float)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        incr("service.ledger_records")
        _log.debug("ledger.append", type=type_, job_id=job_id)
        plan = faults.active_plan()
        if plan is not None:
            hit = plan.service_action("service_crash", f"ledger.{type_}")
            if hit is not None:  # pragma: no cover - exits the process
                _log.warning(
                    "ledger.injected_crash",
                    site=f"ledger.{type_}",
                    exit_code=hit.exit_code,
                )
                os._exit(hit.exit_code)

    # -- replay ------------------------------------------------------------
    def replay(self) -> tuple[dict[str, dict], int]:
        """Fold the ledger into latest-state-per-job.

        Returns ``(states, skipped)`` where ``states`` maps each job id
        to ``{"status", "spec", "submissions", "created_at"}`` (spec
        fields are present only if an intact ``accepted`` record was
        seen) and ``skipped`` counts unusable lines — corrupt seals,
        undecodable JSON, unknown record types.  Skipped lines degrade
        the affected job to whatever its intact records say; they never
        raise.
        """
        states: dict[str, dict] = {}
        skipped = 0
        if not self.path.exists():
            return states, skipped
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                entry = self._decode_line(line, lineno)
                if entry is None:
                    skipped += 1
                    continue
                job_id = entry["job_id"]
                state = states.setdefault(
                    job_id,
                    {
                        "status": None,
                        "spec": None,
                        "submissions": 1,
                        "created_at": None,
                    },
                )
                state["status"] = entry["type"]
                if entry["type"] == "accepted":
                    state["spec"] = entry.get("spec")
                    state["submissions"] = int(entry.get("submissions", 1))
                    state["created_at"] = entry.get("created_at", entry["ts"])
        if skipped:
            _log.warning(
                "ledger.replay_skipped", path=str(self.path), lines=skipped
            )
        return states, skipped

    def _decode_line(self, line: str, lineno: int) -> dict | None:
        try:
            sealed = json.loads(line)
        except json.JSONDecodeError:
            _log.warning(
                "ledger.corrupt_line",
                path=str(self.path),
                line=lineno,
                reason="undecodable JSON",
            )
            return None
        try:
            durable.verify(sealed)
        except durable.CorruptStateError as exc:
            _log.warning(
                "ledger.corrupt_line",
                path=str(self.path),
                line=lineno,
                reason=str(exc),
            )
            return None
        entry = sealed
        if (
            entry.get("type") not in RECORD_TYPES
            or not isinstance(entry.get("job_id"), str)
        ):
            _log.warning(
                "ledger.corrupt_line",
                path=str(self.path),
                line=lineno,
                reason="malformed record",
            )
            return None
        return entry

    # -- compaction --------------------------------------------------------
    def compact(self, live: dict[str, dict]) -> None:
        """Atomically rewrite the ledger to one record per live job.

        ``live`` maps job id to the replayed state of every job the
        manager is about to re-enqueue; each becomes a fresh
        ``accepted`` record (terminal and unrecoverable jobs drop out),
        so ledger size tracks the live queue, not uptime.  The rewrite
        goes through :func:`repro.durable.atomic_write_text` — a crash
        mid-compaction leaves the previous ledger intact.
        """
        lines = []
        for job_id, state in sorted(live.items()):
            entry = {
                "format": _FORMAT,
                "type": "accepted",
                "job_id": job_id,
                "ts": time.time(),
                "spec": state["spec"],
                "submissions": state["submissions"],
                "created_at": state["created_at"],
            }
            lines.append(
                json.dumps(durable.seal(entry), sort_keys=True, default=float)
            )
        text = "".join(line + "\n" for line in lines)
        with self._lock:
            durable.atomic_write_text(self.path, text)
        _log.info(
            "ledger.compacted", path=str(self.path), live_jobs=len(live)
        )
