"""Load generator for the yield-analysis service.

Drives a running server the way a fleet of clients would: submit a
spec, wait for it to complete — polling ``GET /v1/jobs/{id}``, or with
``--follow`` holding the job's SSE event stream open and reacting to
``job.completed``/``job.failed`` events instead — then hammer the warm
path: duplicate submissions (which must dedupe, not recompute) and
repeated result ``GET``\\ s (which must come back at in-memory
latency).  Client-side
latencies land in the ``service.client_submit_seconds`` /
``service.client_result_seconds`` histograms so the bench workload can
gate the warm p95.

Library use (the ``service`` bench workload)::

    from repro.service.loadgen import run_load
    stats = run_load(base_url, spec, duplicates=20, result_gets=50)

Shell use (the CI ``service-smoke`` job)::

    python -m repro.service.loadgen --base-url http://127.0.0.1:8642 \
        --duplicates 20 --gets 50 --telemetry-out service-telemetry.json

The CLI exits 0 only when the burst completed the job, every duplicate
deduped onto it, and the server reports ``service.jobs_failed == 0``.

Resilience: requests retry with exponential backoff and
*deterministic* jitter (hash-derived from the request key and attempt
number, so two identical runs back off identically — no flaky CI).
Admission rejections (429/503) honour the server's ``Retry-After``
header; connection errors cover a server mid-restart.  A ``--follow``
stream whose server dies with the connection open falls back to the
poll loop instead of giving up (counter
``service.client_stream_fallbacks``); each retry counts
``service.client_retries``.
"""

from __future__ import annotations

import argparse
import hashlib
import http.client
import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro import observability
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe, registry
from repro.observability.output import resolve_out_path

_log = get_logger("service.loadgen")

#: A deliberately tiny spec: coarse target and small sample budgets so
#: a smoke burst finishes in seconds while still exercising the full
#: submit -> shard -> cache -> serve path.
QUICK_SPEC = {
    "kind": "table",
    "target": 1e-2,
    "calibration_samples": 2_000,
    "analysis_samples": 600,
    "sampler": "adaptive-is",
    "table_grid": 5,
    "seed": 2006,
    "vbody_levels": [0.0],
}


class LoadError(RuntimeError):
    """The burst hit a response the contract forbids."""


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``attempts`` bounds total tries per request.  Delay for retry ``k``
    is ``base_delay * 2**k``, capped at ``max_delay``, scaled by a
    jitter factor in ``[0.5, 1.0)`` derived from a SHA-256 of the
    request key and attempt number — deterministic (two identical runs
    back off identically; CI never flakes on timing randomness) yet
    decorrelated across different requests, so a rejected burst does
    not retry in lockstep.  A server ``Retry-After`` always wins when
    it asks for longer.
    """

    attempts: int = 5
    base_delay: float = 0.2
    max_delay: float = 5.0

    def delay(self, key: str, attempt: int) -> float:
        raw = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()[:8]
        jitter = 0.5 + 0.5 * (int(raw, 16) / 0xFFFFFFFF)
        return min(self.max_delay, self.base_delay * (2.0 ** attempt)) * jitter


#: Policy used when the caller does not supply one.
DEFAULT_RETRY_POLICY = ClientRetryPolicy()


def _retry_after_seconds(exc: urllib.error.HTTPError) -> float:
    """The server's Retry-After hint, in seconds (0 when absent)."""
    raw = exc.headers.get("Retry-After") if exc.headers else None
    try:
        return max(0.0, float(raw)) if raw is not None else 0.0
    except ValueError:
        return 0.0


def _follow(base_url: str, job_id: str, timeout: float) -> int | None:
    """Follow a job's SSE stream to its terminal event; no polling.

    A minimal Server-Sent-Events client over urllib: reads the
    ``GET /v1/jobs/{id}/events`` stream line by line, parses
    ``event:`` / ``data:`` fields (ignoring ``id:`` and comment
    keepalives), and returns the number of events seen once the job
    completes.  Raises :class:`LoadError` when the job fails or is
    cancelled.

    Returns ``None`` — *fall back to polling* — when the stream dies
    under the client: a socket error or EOF mid-stream (server killed
    with the connection open), or silence past the read timeout (the
    server keepalives every ~15s, so a silent open stream means a dead
    server, not a slow job).  The caller's poll loop then sorts out
    whether the server is gone or merely restarting.
    """
    # Per-read timeout, not the whole-job budget: keepalives mean a
    # healthy stream is never silent for long, so a short read timeout
    # detects a dead-but-open connection quickly while a slow job can
    # still be followed for the caller's full budget.
    read_timeout = min(timeout, 30.0)
    req = urllib.request.Request(
        f"{base_url}/v1/jobs/{job_id}/events",
        headers={"Accept": "text/event-stream"},
    )
    events_seen = 0
    event_type: str | None = None
    data_lines: list[str] = []
    try:
        with urllib.request.urlopen(req, timeout=read_timeout) as resp:
            content_type = resp.headers.get("Content-Type", "")
            if "text/event-stream" not in content_type:
                raise LoadError(
                    f"event stream has Content-Type {content_type!r}"
                )
            for raw in resp:
                line = raw.decode().rstrip("\r\n")
                if not line:
                    # Blank line: dispatch the accumulated message.
                    if event_type is not None:
                        payload = (
                            json.loads("\n".join(data_lines))
                            if data_lines
                            else {}
                        )
                        events_seen += 1
                        _log.debug(
                            "loadgen.event", type=event_type,
                            seq=payload.get("seq"),
                        )
                        if event_type == "job.failed":
                            raise LoadError(
                                "job failed: "
                                f"{payload.get('data', {}).get('error')}"
                            )
                        if event_type == "job.cancelled":
                            raise LoadError(f"job {job_id} was cancelled")
                        if event_type == "job.completed":
                            return events_seen
                        if event_type == "job.state":
                            # The stream's framing snapshot; terminal
                            # here means the journaled terminal event
                            # is no longer replayable.
                            if payload.get("status") == "failed":
                                raise LoadError(
                                    f"job failed: {payload.get('error')}"
                                )
                            if payload.get("status") == "cancelled":
                                raise LoadError(
                                    f"job {job_id} was cancelled"
                                )
                            if payload.get("status") == "completed":
                                return events_seen
                    event_type, data_lines = None, []
                    continue
                if line.startswith(":"):
                    continue  # comment / keepalive
                field, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if field == "event":
                    event_type = value
                elif field == "data":
                    data_lines.append(value)
    except LoadError:
        raise
    except urllib.error.HTTPError as exc:
        raise LoadError(
            f"event stream rejected: HTTP {exc.code}"
        ) from None
    except (
        TimeoutError,
        ConnectionError,
        http.client.HTTPException,
        OSError,
    ) as exc:
        # The server died (or went silent) with the stream open —
        # exactly the case a held connection cannot distinguish from a
        # slow job without the keepalive contract.  Hand control back
        # to the poll loop rather than failing the whole burst.
        _log.warning(
            "loadgen.stream_broken", job_id=job_id,
            error=f"{type(exc).__name__}: {exc}",
        )
        incr("service.client_stream_fallbacks")
        return None
    # EOF without a terminal event: the server closed the connection
    # mid-stream (shutdown, kill).  Same recovery: fall back to polling.
    _log.warning("loadgen.stream_ended_early", job_id=job_id)
    incr("service.client_stream_fallbacks")
    return None


def _request(
    method: str,
    url: str,
    payload: dict | None = None,
    timeout: float = 30.0,
    retry: ClientRetryPolicy | None = None,
) -> tuple[int, dict]:
    """One HTTP exchange; returns (status, decoded JSON body).

    With a ``retry`` policy, 429/503 responses are retried after
    ``max(Retry-After, backoff)`` seconds and connection-level errors
    (refused, reset, timed out — a server mid-restart) after the
    backoff alone; each retry counts ``service.client_retries``.  The
    final attempt's rejection (or connection error) surfaces to the
    caller unchanged.
    """
    data = json.dumps(payload).encode() if payload is not None else None
    attempts = retry.attempts if retry is not None else 1
    for attempt in range(attempts):
        req = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = {}
            if (
                retry is not None
                and exc.code in (429, 503)
                and attempt + 1 < attempts
            ):
                delay = max(
                    _retry_after_seconds(exc), retry.delay(url, attempt)
                )
                incr("service.client_retries")
                _log.info(
                    "loadgen.retry", url=url, status=exc.code,
                    attempt=attempt + 1, delay=round(delay, 3),
                )
                time.sleep(delay)
                continue
            return exc.code, body
        except (urllib.error.URLError, TimeoutError, ConnectionError) as exc:
            if retry is not None and attempt + 1 < attempts:
                delay = retry.delay(url, attempt)
                incr("service.client_retries")
                _log.info(
                    "loadgen.retry", url=url,
                    error=f"{type(exc).__name__}: {exc}",
                    attempt=attempt + 1, delay=round(delay, 3),
                )
                time.sleep(delay)
                continue
            raise
    raise AssertionError("unreachable")  # pragma: no cover


def run_load(
    base_url: str,
    spec: dict | None = None,
    duplicates: int = 20,
    result_gets: int = 50,
    poll_interval: float = 0.1,
    timeout: float = 300.0,
    follow: bool = False,
    retry: ClientRetryPolicy | None = DEFAULT_RETRY_POLICY,
) -> dict:
    """Submit ``spec``, wait for completion, then burst the warm path.

    ``follow=True`` waits on the job's SSE event stream (one held
    connection, event-driven) instead of polling ``GET /v1/jobs/{id}``
    every ``poll_interval`` seconds; a stream that dies under the
    client falls back to the poll loop.  ``retry`` governs
    backoff-and-retry of rejected (429/503) or connection-failed
    requests; ``None`` disables retries.

    Returns a summary dict (job id, phase latencies, the final healthz
    payload).  Raises :class:`LoadError` on any contract violation:
    a submission rejected past the retry budget, a duplicate that did
    not dedupe, a warm result that is not served, or the job failing.
    """
    base_url = base_url.rstrip("/")
    spec = spec if spec is not None else QUICK_SPEC
    registry.counter("service.client_retries")
    registry.counter("service.client_stream_fallbacks")

    start = time.perf_counter()
    status, body = _request("POST", f"{base_url}/v1/jobs", spec, retry=retry)
    observe("service.client_submit_seconds", time.perf_counter() - start)
    if status not in (200, 202):
        raise LoadError(f"submit rejected: HTTP {status} {body}")
    job_id = body["job"]["id"]
    _log.info("loadgen.submitted", job_id=job_id, status=status)

    wait_deadline = time.monotonic() + timeout
    follow_events = None
    followed = False
    if follow:
        follow_events = _follow(base_url, job_id, timeout)
        followed = follow_events is not None
        if not followed:
            _log.warning("loadgen.follow_fallback", job_id=job_id)
    if not followed:
        while True:
            status, body = _request(
                "GET", f"{base_url}/v1/jobs/{job_id}", retry=retry
            )
            if status != 200:
                raise LoadError(f"status poll failed: HTTP {status} {body}")
            job_status = body["job"]["status"]
            if job_status == "completed":
                break
            if job_status == "failed":
                raise LoadError(f"job failed: {body['job']['error']}")
            if job_status == "cancelled":
                raise LoadError(f"job {job_id} was cancelled")
            if time.monotonic() > wait_deadline:
                raise LoadError(f"job {job_id} not done within {timeout}s")
            time.sleep(poll_interval)
    cold_seconds = time.perf_counter() - start
    _log.info("loadgen.completed", job_id=job_id,
              seconds=round(cold_seconds, 3))

    # Warm phase 1: duplicate submissions must attach, never recompute.
    for _ in range(duplicates):
        t0 = time.perf_counter()
        status, body = _request(
            "POST", f"{base_url}/v1/jobs", spec, retry=retry
        )
        observe("service.client_submit_seconds", time.perf_counter() - t0)
        if status != 200 or not body["deduped"]:
            raise LoadError(
                f"duplicate did not dedupe: HTTP {status} "
                f"deduped={body.get('deduped')}"
            )
        if body["job"]["id"] != job_id:
            raise LoadError(
                f"duplicate got a different job id: {body['job']['id']}"
            )

    # Warm phase 2: repeated result reads must be served immediately.
    result_url = f"{base_url}/v1/jobs/{job_id}/result"
    for _ in range(result_gets):
        t0 = time.perf_counter()
        status, body = _request("GET", result_url, retry=retry)
        observe("service.client_result_seconds", time.perf_counter() - t0)
        if status != 200 or body["status"] != "completed":
            raise LoadError(f"warm result read failed: HTTP {status}")

    # Per-job attribution: the completed job must serve its own
    # telemetry snapshot, keyed by run_id == job_id.
    status, telemetry = _request(
        "GET", f"{base_url}/v1/jobs/{job_id}/telemetry", retry=retry
    )
    if status != 200:
        raise LoadError(f"job telemetry failed: HTTP {status} {telemetry}")
    if telemetry.get("run_id") != job_id:
        raise LoadError(
            f"job telemetry run_id mismatch: {telemetry.get('run_id')!r}"
        )

    status, health = _request("GET", f"{base_url}/v1/healthz", retry=retry)
    if status != 200:
        raise LoadError(f"healthz failed: HTTP {status}")
    counters = health["telemetry"]["metrics"]["counters"]
    if counters.get("service.jobs_failed", 0) != 0:
        raise LoadError(
            f"server reports failed jobs: {counters['service.jobs_failed']}"
        )
    return {
        "job_id": job_id,
        "cold_seconds": round(cold_seconds, 6),
        "duplicates": duplicates,
        "result_gets": result_gets,
        "follow_events": follow_events,
        "healthz": health,
        "job_telemetry": telemetry,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Burst a running repro.service with a smoke load.",
    )
    parser.add_argument(
        "--base-url",
        required=True,
        metavar="URL",
        help="server address, e.g. http://127.0.0.1:8642",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="JSON",
        help="job spec as inline JSON (default: the built-in tiny "
        "table spec)",
    )
    parser.add_argument(
        "--duplicates",
        type=int,
        default=20,
        metavar="N",
        help="duplicate submissions in the warm burst (default 20)",
    )
    parser.add_argument(
        "--gets",
        type=int,
        default=50,
        metavar="N",
        help="warm result GETs in the burst (default 50)",
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="wait on the job's SSE event stream instead of polling "
        "its status endpoint",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="seconds to wait for the job to complete (default 300)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=DEFAULT_RETRY_POLICY.attempts,
        metavar="N",
        help="attempts per request when the server answers 429/503 or "
        "the connection fails; backoff is exponential with "
        "deterministic jitter and honours Retry-After (default "
        f"{DEFAULT_RETRY_POLICY.attempts}; 1 disables retries)",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE",
        help="write the server's final healthz telemetry plus the "
        "client-side latency histograms to FILE; an existing FILE "
        "diverts to a numbered sibling unless --telemetry-overwrite "
        "is passed",
    )
    parser.add_argument(
        "--telemetry-overwrite",
        action="store_true",
        help="allow --telemetry-out to replace an existing file",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="progress logs on stderr",
    )
    args = parser.parse_args(argv)
    if args.retries < 1:
        parser.error(f"--retries must be >= 1, got {args.retries}")

    spec = None
    if args.spec is not None:
        try:
            spec = json.loads(args.spec)
        except json.JSONDecodeError as exc:
            parser.error(f"--spec is not valid JSON: {exc}")

    observability.configure(verbosity=args.verbose, metrics=True)
    try:
        summary = run_load(
            args.base_url,
            spec,
            duplicates=args.duplicates,
            result_gets=args.gets,
            timeout=args.timeout,
            follow=args.follow,
            retry=ClientRetryPolicy(attempts=args.retries),
        )
    except (LoadError, urllib.error.URLError, OSError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1

    counters = summary["healthz"]["telemetry"]["metrics"]["counters"]
    # CLI-only assertion: against a freshly-booted server (the CI
    # smoke), the burst must leave at least one completed job behind.
    # The library path skips this — a bench repeat resets counters
    # between the untimed cold build and the timed warm burst.
    if counters.get("service.jobs_completed", 0) < 1:
        print("FAIL: server reports zero completed jobs", file=sys.stderr)
        return 1
    print(
        "load burst ok: job", summary["job_id"],
        f"cold {summary['cold_seconds']:.2f}s,",
        int(counters.get("service.jobs_deduped", 0)), "deduped submission(s),",
        int(counters.get("service.jobs_completed", 0)), "completed job(s)",
    )
    if args.telemetry_out is not None:
        client = observability.registry.snapshot()
        report = {
            "schema": observability.SCHEMA,
            "summary": {
                k: v
                for k, v in summary.items()
                if k not in ("healthz", "job_telemetry")
            },
            "server": summary["healthz"],
            "job_telemetry": summary["job_telemetry"],
            "client_metrics": client,
        }
        logger = observability.get_logger("service.loadgen")
        out_path = resolve_out_path(
            args.telemetry_out, args.telemetry_overwrite, logger,
            "telemetry", "--telemetry-overwrite",
        )
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print("telemetry written to", out_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
