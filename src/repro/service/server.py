"""The asyncio HTTP/JSON front end of the yield-analysis service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server`
(stdlib only — no new runtime dependencies), exposing:

* ``POST /v1/jobs`` — submit a spec; 202 on a new job, 200 when the
  submission deduped onto an existing one;
* ``GET /v1/jobs/{id}`` — status + progress read from the job's own
  run scope (exact per-job attribution at any ``--job-workers`` width);
* ``GET /v1/jobs/{id}/result`` — the computed surface (409 until the
  job completes);
* ``GET /v1/jobs/{id}/telemetry`` — the job's isolated telemetry
  snapshot (``repro.telemetry/1`` + ``run_id``): live while running,
  frozen once terminal, 409 while still queued;
* ``GET /v1/jobs/{id}/events`` — Server-Sent-Events stream of one
  job's lifecycle (closes after the terminal event);
* ``GET /v1/events`` — the firehose: every journal event as SSE, until
  the client disconnects.  Both streams honour ``Last-Event-ID``;
* ``DELETE /v1/jobs/{id}`` — cancel: 200 for a queued job (now
  terminal), 202 for a running one (stops at its next checkpoint
  boundary), 409 for a terminal one;
* ``GET /v1/healthz`` — liveness, job counts, and the full metrics
  snapshot under the ``repro.telemetry/1`` schema;
* ``GET /v1/readyz`` — readiness: 200 while accepting work, 503 once
  a drain has begun (load balancers stop routing, clients back off);
* ``GET /v1/metrics`` — the same registry in Prometheus text
  exposition format, for standard scrapers.

Admission rejections (queue full → 429 ``queue-full``, draining → 503
``draining``) carry a ``Retry-After`` header the loadgen honours.

The wire format (schemas, error codes, dedupe semantics) is specified
in ``docs/service.md``; this module is an implementation of that
document, not the other way around.

Request handling never blocks on job execution: submissions enqueue
onto the :class:`~repro.service.jobs.JobManager` worker thread and
return immediately, so status polls and warm result reads stay at
in-memory-lookup latency while a build runs.  Event streams poll the
journal (tens of milliseconds), never touch the worker thread, and
exit promptly when the server shuts down.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time

from repro.observability import SCHEMA, registry
from repro.observability.export import render_prometheus
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe, set_gauge
from repro.service.jobs import TERMINAL_STATUSES, AdmissionError, JobManager
from repro.service.journal import TERMINAL_EVENTS
from repro.service.spec import SpecError

_log = get_logger("service.http")

#: Largest accepted request body; specs are tiny, anything bigger is
#: a client error (413), not a reason to buffer unboundedly.
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Terminate request handling with a structured error response."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        allow: str | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.allow = allow
        self.retry_after = retry_after

    def headers(self) -> dict[str, str] | None:
        extra: dict[str, str] = {}
        if self.allow is not None:
            extra["Allow"] = self.allow
        if self.retry_after is not None:
            # Retry-After is delta-seconds; round up so "0.4s" does not
            # invite an instant retry.
            extra["Retry-After"] = str(max(1, math.ceil(self.retry_after)))
        return extra or None


def _metrics_snapshot() -> dict:
    """The healthz telemetry block: metrics only, no trace tree.

    Histogram summaries keep their ``p50``/``p95`` estimates but drop
    the raw reservoir — healthz is polled, so its payload stays small.
    """
    metrics = registry.snapshot()
    for summary in metrics["histograms"].values():
        summary.pop("reservoir", None)
    return {"schema": SCHEMA, "metrics": metrics}


#: Content type the Prometheus text exposition format mandates.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Journal poll cadence of an open SSE stream, seconds.
STREAM_POLL_SECONDS = 0.05

#: Idle seconds between ``: keepalive`` comments on an open stream.
STREAM_KEEPALIVE_SECONDS = 15.0


class _RawResponse:
    """A routed response that is not JSON (e.g. exposition text)."""

    __slots__ = ("status", "body", "content_type")

    def __init__(
        self, body: bytes, content_type: str, status: int = 200
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type


class _EventStream:
    """A routed response that streams the journal as SSE."""

    __slots__ = ("job_id", "last_seq")

    def __init__(self, job_id: str | None, last_seq: int) -> None:
        self.job_id = job_id
        self.last_seq = last_seq


def _sse_block(seq: int | None, event_type: str, data: dict) -> bytes:
    """One Server-Sent-Events message (``id``/``event``/``data`` lines
    plus the blank-line terminator).  ``seq=None`` omits the ``id:``
    line, leaving the client's ``Last-Event-ID`` untouched — used for
    the synthetic ``job.state`` snapshots that frame a per-job stream
    but do not live in the journal.
    """
    lines = []
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"event: {event_type}")
    lines.append(f"data: {json.dumps(data)}")
    return ("\n".join(lines) + "\n\n").encode()


def _last_event_id(headers: dict[str, str]) -> int:
    """The resume point an SSE client asked for (0 = from the start)."""
    raw = headers.get("last-event-id")
    if raw is None:
        return 0
    try:
        value = int(raw)
        if value < 0:
            raise ValueError
    except ValueError:
        raise _HttpError(
            400,
            "invalid-last-event-id",
            f"Last-Event-ID must be a non-negative integer, got {raw!r}",
        ) from None
    return value


class ServiceServer:
    """One listening socket bound to one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        #: Flipped by :meth:`stop` before the socket closes; open SSE
        #: streams check it each poll so ``wait_closed()`` (which waits
        #: for connection handlers on Python >= 3.12) returns promptly.
        self._closing = False
        #: In-flight connection handlers; :meth:`stop` waits for this
        #: to reach zero after closing the listener, so a request
        #: accepted just before shutdown is answered, never dropped.
        self._active_handlers = 0
        self._handlers_idle: asyncio.Event | None = None

    async def start(self) -> None:
        """Bind and start serving; ``self.port`` holds the real port
        afterwards (relevant when constructed with port 0)."""
        self._handlers_idle = asyncio.Event()
        self._handlers_idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("service.listening", host=self.host, port=self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, handler_timeout: float = 5.0) -> None:
        """Shut down in dependency order: listener, writers, manager.

        The listener closes first (no new connections), then in-flight
        handlers get up to ``handler_timeout`` seconds to finish
        writing (``wait_closed()`` only waits for them on
        Python >= 3.12, so the explicit drain matters on 3.10/3.11),
        and only then does the manager stop — a request accepted just
        before shutdown is answered from live state, never dropped on
        the floor.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handlers_idle is not None and self._active_handlers > 0:
            try:
                await asyncio.wait_for(
                    self._handlers_idle.wait(), timeout=handler_timeout
                )
            except asyncio.TimeoutError:  # pragma: no cover - slow client
                _log.warning(
                    "service.stop.handlers_stuck",
                    active=self._active_handlers,
                )
        self.manager.shutdown()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = time.perf_counter()
        status = 500
        method = path = "?"
        self._active_handlers += 1
        if self._handlers_idle is not None:
            self._handlers_idle.clear()
        try:
            try:
                method, path, body, headers = await self._read_request(reader)
                result = self._route(method, path, body, headers)
            except _HttpError as exc:
                status = exc.status
                payload = {"error": {"code": exc.code, "message": str(exc)}}
                await self._respond(writer, status, payload, exc.headers())
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return  # client went away; nothing to answer
            except Exception as exc:  # noqa: BLE001 - last-resort boundary
                _log.warning(
                    "service.request.error", method=method, path=path,
                    error=f"{type(exc).__name__}: {exc}",
                )
                status = 500
                await self._respond(
                    writer,
                    500,
                    {
                        "error": {
                            "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}",
                        }
                    },
                )
                return
            if isinstance(result, _EventStream):
                status = 200
                try:
                    await self._stream_events(writer, result)
                except (ConnectionError, OSError):
                    pass  # client hung up mid-stream
            elif isinstance(result, _RawResponse):
                status = result.status
                await self._respond_raw(writer, result)
            else:
                status, payload = result
                await self._respond(writer, status, payload)
        finally:
            incr("service.requests")
            observe("service.request_seconds", time.perf_counter() - start)
            _log.debug(
                "service.request", method=method, path=path, status=status,
            )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            self._active_handlers -= 1
            if self._active_handlers <= 0 and self._handlers_idle is not None:
                self._handlers_idle.set()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, dict[str, str]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, "bad-request", "malformed request line")
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            # Last header wins on duplicates; header names are
            # case-insensitive, stored lowercased.
            headers[name.strip().lower()] = value.strip()
        content_length = 0
        if "content-length" in headers:
            try:
                content_length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(
                    400, "bad-request", "unparseable Content-Length"
                ) from None
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(
                413,
                "body-too-large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        return method, path, body, headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    async def _respond_raw(
        self, writer: asyncio.StreamWriter, response: _RawResponse
    ) -> None:
        headers = [
            f"HTTP/1.1 {response.status} "
            f"{_STATUS_TEXT.get(response.status, 'Unknown')}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            "Connection: close",
        ]
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + response.body)
        await writer.drain()

    async def _stream_events(
        self, writer: asyncio.StreamWriter, stream: _EventStream
    ) -> None:
        """Serve one SSE connection off the manager's journal.

        Per-job streams open with a synthetic un-id'd ``job.state``
        snapshot (so a client always learns the current status, even
        when resuming past the terminal event), replay journaled events
        after ``Last-Event-ID``, then follow live appends and close
        once the job's terminal event has been sent.  The firehose
        (``job_id=None``) replays and then follows until the client
        disconnects or the server shuts down, with ``: keepalive``
        comments during idle stretches.  A resume gap (events already
        evicted from the ring) is flagged with a comment — sequence
        numbers are never reused, so the client can also see the gap in
        the ``id:`` line.
        """
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        journal = self.manager.journal
        cursor = stream.last_seq
        job = None
        if stream.job_id is not None:
            job = self.manager.get(stream.job_id)
            if job is not None:
                writer.write(_sse_block(None, "job.state", job.view()))
        events, truncated = journal.after(cursor, stream.job_id)
        if truncated:
            writer.write(
                b": gap - events after the requested Last-Event-ID were "
                b"evicted from the journal ring\n\n"
            )
        loop = asyncio.get_running_loop()
        next_keepalive = loop.time() + STREAM_KEEPALIVE_SECONDS
        first = True
        while True:
            terminal_sent = False
            for event in events:
                writer.write(_sse_block(event.seq, event.type, event.wire()))
                cursor = event.seq
                if event.type in TERMINAL_EVENTS:
                    terminal_sent = True
            if events:
                next_keepalive = loop.time() + STREAM_KEEPALIVE_SECONDS
            await writer.drain()
            if stream.job_id is not None:
                if terminal_sent:
                    return
                # Opening replay of an already-terminal job with no
                # journaled events past the resume point: the terminal
                # event predates Last-Event-ID or was evicted, so
                # nothing more will ever arrive — the opening job.state
                # already told the client how the job ended.  Only the
                # *opening* replay may conclude this: mid-stream, a
                # terminal status with no event yet means the terminal
                # append (which happens just after the status flip) is
                # still in flight.
                if (
                    first
                    and not events
                    and job is not None
                    and job.status in TERMINAL_STATUSES
                ):
                    return
            first = False
            if self._closing or writer.is_closing():
                return
            if loop.time() >= next_keepalive:
                writer.write(b": keepalive\n\n")
                await writer.drain()
                next_keepalive = loop.time() + STREAM_KEEPALIVE_SECONDS
            await asyncio.sleep(STREAM_POLL_SECONDS)
            events, _ = journal.after(cursor, stream.job_id)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, body: bytes, headers: dict):
        if path == "/v1/jobs":
            if method != "POST":
                raise _HttpError(
                    405, "method-not-allowed",
                    f"{method} not allowed on {path}", allow="POST",
                )
            return self._submit(body)
        if path in ("/v1/healthz", "/v1/readyz", "/v1/metrics", "/v1/events"):
            if method != "GET":
                raise _HttpError(
                    405, "method-not-allowed",
                    f"{method} not allowed on {path}", allow="GET",
                )
        if path == "/v1/healthz":
            return self._healthz()
        if path == "/v1/readyz":
            return self._readyz()
        if path == "/v1/metrics":
            return self._metrics()
        if path == "/v1/events":
            return _EventStream(None, _last_event_id(headers))
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if "/" not in rest and method == "DELETE":
                return self._cancel(rest)
            if method != "GET":
                allow = "GET, DELETE" if "/" not in rest else "GET"
                raise _HttpError(
                    405, "method-not-allowed",
                    f"{method} not allowed on {path}", allow=allow,
                )
            if rest.endswith("/events"):
                job_id = rest[: -len("/events")].rstrip("/")
                self._lookup(job_id)
                return _EventStream(job_id, _last_event_id(headers))
            if rest.endswith("/result"):
                return self._result(rest[: -len("/result")].rstrip("/"))
            if rest.endswith("/telemetry"):
                return self._telemetry(
                    rest[: -len("/telemetry")].rstrip("/")
                )
            if "/" not in rest:
                return self._status(rest)
        raise _HttpError(404, "not-found", f"no route for {method} {path}")

    def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            raw = json.loads(body.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(
                400, "invalid-json", f"request body is not JSON: {exc}"
            ) from None
        try:
            job, created = self.manager.submit(raw)
        except SpecError as exc:
            raise _HttpError(400, exc.code, str(exc)) from None
        except AdmissionError as exc:
            status = 503 if exc.code == "draining" else 429
            raise _HttpError(
                status, exc.code, str(exc), retry_after=exc.retry_after
            ) from None
        return (202 if created else 200), {
            "job": job.view(),
            "deduped": not created,
        }

    def _cancel(self, job_id: str) -> tuple[int, dict]:
        job, outcome = self.manager.cancel(job_id)
        if outcome == "missing":
            raise _HttpError(404, "unknown-job", f"no job {job_id!r}")
        if outcome == "terminal":
            raise _HttpError(
                409, "job-terminal",
                f"job {job_id} is already {job.status}; terminal state "
                "is immutable",
            )
        # "cancelled" (was queued, now terminal) answers 200;
        # "cancelling" (running, stops at the next checkpoint
        # boundary) answers 202.
        status = 200 if outcome == "cancelled" else 202
        return status, {"job": job.view(), "cancelling": outcome == "cancelling"}

    def _lookup(self, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            raise _HttpError(404, "unknown-job", f"no job {job_id!r}")
        return job

    def _status(self, job_id: str) -> tuple[int, dict]:
        return 200, {"job": self._lookup(job_id).view()}

    def _result(self, job_id: str) -> tuple[int, dict]:
        job = self._lookup(job_id)
        if job.status == "completed":
            return 200, {
                "job_id": job.id,
                "status": job.status,
                "result": job.result,
            }
        if job.status == "failed":
            # Deadline expiries carry their own wire code so a client
            # can tell "budget ran out" from "the build blew up".
            raise _HttpError(
                409, job.error_code or "job-failed",
                f"job {job_id} failed: {job.error}",
            )
        if job.status == "cancelled":
            raise _HttpError(
                409, "cancelled",
                f"job {job_id} was cancelled: {job.error}",
            )
        raise _HttpError(
            409, "not-completed",
            f"job {job_id} is {job.status}; poll GET /v1/jobs/{job_id}",
        )

    def _telemetry(self, job_id: str) -> tuple[int, dict]:
        """``GET /v1/jobs/{id}/telemetry``: the job's own scope.

        Live (a point-in-time read of the running job's scope) until
        the job reaches a terminal state, then the frozen snapshot —
        so "why is job X slow" can be asked while X is still slow.
        """
        job = self._lookup(job_id)
        snapshot = job.telemetry_snapshot()
        if snapshot is None:
            raise _HttpError(
                409, "not-started",
                f"job {job_id} is queued; telemetry exists once it starts",
            )
        return 200, {
            "job_id": job.id,
            "run_id": job.id,
            "status": job.status,
            "telemetry": snapshot,
        }

    def _healthz(self) -> tuple[int, dict]:
        # Uptime comes from the monotonic clock (satellite of PR 8): a
        # wall-clock step must not make it jump or go negative.
        return 200, {
            "status": "ok",
            "uptime_seconds": round(self.manager.uptime_seconds(), 3),
            "queue_depth": self.manager.queue_depth(),
            "jobs": self.manager.counts(),
            "telemetry": _metrics_snapshot(),
        }

    def _readyz(self) -> tuple[int, dict]:
        """``GET /v1/readyz``: 200 while accepting work, 503 draining.

        Distinct from healthz on purpose — a draining server is still
        *alive* (healthz 200, results and streams served) but must
        stop receiving new work from load balancers.
        """
        draining = self.manager.draining
        payload = {
            "status": "draining" if draining else "ready",
            "draining": draining,
            "queue_depth": self.manager.queue_depth(),
        }
        return (503 if draining else 200), payload

    def _metrics(self) -> _RawResponse:
        """``GET /v1/metrics``: the registry as Prometheus exposition
        text — value-identical to the healthz telemetry block, just in
        the format a standard scraper speaks.  Uptime is refreshed into
        a gauge at scrape time so dashboards get it for free.
        """
        set_gauge("service.uptime_seconds", self.manager.uptime_seconds())
        return _RawResponse(
            render_prometheus(registry.snapshot()).encode(),
            PROMETHEUS_CONTENT_TYPE,
        )


class BackgroundServer:
    """A :class:`ServiceServer` on its own thread + event loop.

    For tests and the bench/load-generator: ``start()`` returns once
    the socket is bound (so ``base_url`` is immediately usable from the
    calling thread) and ``stop()`` tears the loop down cleanly.
    """

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = ServiceServer(manager, host=host, port=port)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()

    def start(self) -> str:
        """Bind, start serving on a daemon thread, return the base URL."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):  # pragma: no cover
            raise RuntimeError("service failed to start within 10s")
        return self.server.base_url

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            self._stop_event = asyncio.Event()
            await self.server.start()
            self._ready.set()
            # The listening server stays up until stop() flips the
            # event from another thread; teardown then happens *inside*
            # the loop so the thread exits with nothing pending.
            await self._stop_event.wait()
            await self.server.stop()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=10)
        self._thread = None
        self._loop = None
        self._stop_event = None
