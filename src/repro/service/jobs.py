"""Job lifecycle for the yield-analysis service.

A job is one normalized spec (see :mod:`repro.service.spec`) moving
through ``queued -> running -> completed | failed | cancelled``.  The
:class:`JobManager` owns the registry of jobs, dedupes submissions by
the spec fingerprint (which *is* the job id), and executes each job
inside its own :class:`~repro.observability.context.RunContext` with
``run_id == job_id``: every counter bump, span, and diagnostic the
job produces lands in the job's own scope (exactly — not
reconstructed from global-counter deltas), alongside the process-wide
totals.  Because attribution is scoped, jobs may execute concurrently
(``job_workers > 1``) with per-job progress, results, and telemetry
identical to a serial run; concurrency *inside* a job still comes from
the :class:`~repro.parallel.executor.ParallelExecutor` fan-out over
grid cells.  A job's final scope snapshot is frozen at the terminal
transition, persisted beside the flight-recorder dumps, and served at
``GET /v1/jobs/{id}/telemetry``.

Crash-safe lifecycle (see ``docs/robustness.md``):

* with a ``state_dir``, every accepted/started/terminal transition is
  appended to a durable :class:`~repro.service.ledger.JobLedger`
  before it is acted on; on boot the ledger is replayed and every job
  the previous process still owed is re-enqueued
  (``service.jobs_recovered``) to resume through its checkpoints;
* :meth:`JobManager.begin_drain` / :meth:`JobManager.drain` implement
  graceful shutdown — new work is rejected (503 upstream), running
  jobs checkpoint-and-finish within a timeout;
* ``max_queue_depth`` bounds admission (429 upstream), a spec-borne
  ``deadline_s`` bounds job runtime, and :meth:`JobManager.cancel`
  stops a job cooperatively at its next checkpoint boundary.

Service counters (all under the ``repro.telemetry/1`` schema, see
``docs/service.md``):

* ``service.jobs_accepted`` — new (or retried) specs queued;
* ``service.jobs_deduped`` — submissions attached to an existing job;
* ``service.jobs_completed`` / ``service.jobs_failed`` /
  ``service.jobs_cancelled`` — terminal states;
* ``service.jobs_recovered`` — jobs re-enqueued from the ledger on
  boot; ``service.jobs_lost`` — ledger entries that could *not* be
  recovered (torn accepted record);
* ``service.jobs_rejected`` — submissions refused by admission
  control (queue full, draining, or an injected ``reject_burst``);
* ``service.jobs_deadline_exceeded`` — jobs stopped by ``deadline_s``;
* ``service.queue_depth`` (gauge) — jobs currently queued or running;
* ``service.draining`` (gauge) — 1 once drain has begun;
* ``service.job_seconds`` (histogram) — per-job wall time;
* ``service.events`` / ``service.events_dropped`` — journal appends and
  ring-buffer evictions (see :mod:`repro.service.journal`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import cancellation, faults
from repro.experiments.context import ExperimentContext
from repro.observability.context import RunContext, RunScope
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe, registry, set_gauge
from repro.service.journal import EventJournal
from repro.service.ledger import JobLedger
from repro.service.spec import (
    SpecError,
    job_cells,
    normalize_spec,
    spec_fingerprint,
)

_log = get_logger("service.jobs")

#: Counters the per-job progress report carries, read from the job's
#: own run scope — exact attribution regardless of how many jobs are
#: executing concurrently.
PROGRESS_COUNTERS = (
    "mc.samples",
    "mc.estimates",
    "solver.calls",
    "cache.hits",
    "cache.misses",
    "checkpoint.flushes",
    "checkpoint.resumed_cells",
    "checkpoint.completed_cells",
)

#: Job lifecycle states.
JOB_STATUSES = ("queued", "running", "completed", "failed", "cancelled")

#: States a job never leaves on its own (a resubmission of a failed or
#: cancelled job retries it in place; a completed job serves warm).
TERMINAL_STATUSES = ("completed", "failed", "cancelled")

#: Terminal states a resubmission restarts instead of attaching to.
RETRYABLE_STATUSES = ("failed", "cancelled")


class AdmissionError(RuntimeError):
    """A submission was refused before any work was queued.

    Attributes:
        code: stable wire-error code (``queue-full`` / ``draining``).
        retry_after: seconds the client should wait before retrying —
            surfaced as the HTTP ``Retry-After`` header.
    """

    code = "rejected"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class QueueFullError(AdmissionError):
    """The bounded queue is at ``max_queue_depth`` (HTTP 429)."""

    code = "queue-full"


class DrainingError(AdmissionError):
    """The service is draining and accepts no new work (HTTP 503)."""

    code = "draining"


def run_spec(
    spec: dict,
    workers: int = 1,
    cache_dir: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 8,
) -> dict:
    """Execute one normalized spec; return the JSON-ready result.

    This is the default job runner: it builds an
    :meth:`ExperimentContext.from_spec` context (so the build shards
    over the executor, persists to the result cache, and checkpoints
    mid-build) and evaluates the requested surface at its own grid
    nodes.

    Cancellation safe points: the ambient
    :mod:`repro.cancellation` token is polled between surfaces here
    and between checkpoint slices inside each build, so a cancelled or
    deadline-expired job stops with its last flush already durable.
    """
    cancellation.check_active()
    ctx = ExperimentContext.from_spec(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    if spec["kind"] == "table":
        from repro.failures.analysis import MECHANISMS

        surfaces = []
        corner_grid: list[float] = []
        for vbody in spec["vbody_levels"]:
            cancellation.check_active()
            table = ctx.table(vbody)
            corner_grid = [float(x) for x in table.grid]
            surfaces.append(
                {
                    "vbody": vbody,
                    "log10_probability": {
                        name: [
                            float(v)
                            for v in np.log10(
                                np.clip(
                                    table.series(table.grid, name),
                                    1e-300,
                                    1.0,
                                )
                            )
                        ]
                        for name in MECHANISMS + ("any",)
                    },
                    "diagnostics": (
                        dataclasses.asdict(table.diagnostics)
                        if table.diagnostics is not None
                        else None
                    ),
                }
            )
        return {
            "kind": "table",
            "corner_grid": corner_grid,
            "surfaces": surfaces,
        }

    from repro.experiments.asb import HoldProbabilityTable

    corner_grid = [
        float(x) for x in np.linspace(-0.12, 0.12, spec["corner_points"])
    ]
    table = HoldProbabilityTable(
        ctx,
        corner_grid=np.array(corner_grid),
        vsb_grid=np.array(spec["vsb_levels"]),
    )
    return {
        "kind": "hold-surface",
        "corner_grid": corner_grid,
        "vsb_levels": spec["vsb_levels"],
        "log10_probability": [
            [
                float(np.log10(max(table.probability(c, v), 1e-300)))
                for v in spec["vsb_levels"]
            ]
            for c in corner_grid
        ],
        "diagnostics": (
            dataclasses.asdict(table.diagnostics)
            if table.diagnostics is not None
            else None
        ),
    }


@dataclass
class Job:
    """One spec's journey through the service."""

    id: str
    spec: dict
    status: str = "queued"
    submissions: int = 1
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: Wire error code for a terminal non-success (``cancelled`` /
    #: ``deadline-exceeded``; ``None`` for an ordinary failure).
    error_code: str | None = None
    #: True when this job was re-enqueued from the durable ledger on
    #: boot rather than submitted over HTTP in this process's lifetime.
    recovered: bool = False
    result: dict | None = None
    #: Cooperative stop signal, polled by the build at checkpoint
    #: boundaries; replaced on retry so an old cancellation cannot
    #: leak into the new attempt.
    cancel_token: cancellation.CancelToken = field(
        default_factory=cancellation.CancelToken, repr=False
    )
    #: The job's run scope (``run_id == id``), created when execution
    #: starts; everything the job does is collected here, exactly.
    scope: RunScope | None = field(default=None, repr=False)
    #: Final per-job counter values, frozen at the terminal transition.
    final_counters: dict[str, float] | None = None
    #: Final scope snapshot (``repro.telemetry/1`` + ``run_id``),
    #: frozen at the terminal transition and served at
    #: ``GET /v1/jobs/{id}/telemetry``.
    telemetry: dict | None = field(default=None, repr=False)

    def progress(self) -> dict:
        """The wire-format progress block (see docs/service.md).

        Counters are read live from the job's own run scope — exact
        per-job attribution at any ``job_workers`` width.
        ``cells_done`` is exact when the server runs with a checkpoint
        directory (the checkpoint store counts completed/resumed cells
        at the same granularity the build shards in); without one it is
        ``None`` and the raw counters still tell the story.
        """
        cells_total = job_cells(self.spec)
        if self.final_counters is not None:
            counters = dict(self.final_counters)
        elif self.scope is not None:
            counters = {
                name: self.scope.counter_value(name)
                for name in PROGRESS_COUNTERS
            }
        else:  # queued: nothing attributable yet
            counters = {name: 0.0 for name in PROGRESS_COUNTERS}
        checkpointed = (
            counters["checkpoint.completed_cells"]
            + counters["checkpoint.resumed_cells"]
        )
        cells_done: float | None
        if self.status == "completed":
            cells_done = float(cells_total)
        elif checkpointed > 0:
            cells_done = min(float(cells_total), checkpointed)
        else:
            cells_done = None
        return {
            "cells_total": cells_total,
            "cells_done": cells_done,
            "counters": counters,
        }

    def view(self) -> dict:
        """The wire-format job object (``GET /v1/jobs/{id}``)."""
        elapsed = None
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None else time.time()
            elapsed = round(end - self.started_at, 6)
        return {
            "id": self.id,
            "run_id": self.id,
            "kind": self.spec["kind"],
            "status": self.status,
            "spec": self.spec,
            "submissions": self.submissions,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": elapsed,
            "error": self.error,
            "error_code": self.error_code,
            "recovered": self.recovered,
            "progress": self.progress(),
        }

    def telemetry_snapshot(self) -> dict | None:
        """The job's telemetry: frozen if terminal, live if running.

        ``None`` while the job is still queued (no scope exists yet).
        A live snapshot races the job thread's writes, so dict
        iteration may transiently fail; retried a few times — the
        scope is only ever appended to, never torn down mid-run.
        """
        if self.telemetry is not None:
            return self.telemetry
        if self.scope is None:
            return None
        for _ in range(5):
            try:
                return self.scope.snapshot()
            except RuntimeError:  # pragma: no cover - write race
                continue
        return self.scope.snapshot()  # pragma: no cover - write race


class JobManager:
    """Owns job state, dedupe, and the job execution pool.

    Args:
        workers: ``ParallelExecutor`` fan-out width inside each job.
        job_workers: how many jobs may execute concurrently (default
            1 — serial, the pre-existing behaviour).  Safe to raise
            because attribution is run-scoped: each job's progress and
            telemetry come from its own scope, so results and per-job
            snapshots are identical at any width.
        cache_dir: result-cache directory; warm resubmissions of a
            completed-and-evicted job reload from here instead of
            recomputing (and two jobs sharing sub-artifacts share them).
        checkpoint_dir: checkpoint directory; a job killed mid-build
            (server crash, restart) resumes from the last flush when
            the same spec is resubmitted.
        checkpoint_every: completed cells per checkpoint flush.
        runner: job execution callable ``(spec, **exec_opts) -> result``
            — :func:`run_spec` by default, injectable for tests.
        journal_capacity: ring-buffer size of the event journal.
        progress_interval: seconds between ``job.progress`` events for
            a running job.
        flight_dir: where failed jobs dump their flight-recorder JSON
            and completed/failed jobs persist their telemetry snapshot
            (defaults to ``checkpoint_dir``, then ``cache_dir``; with
            neither configured both stay in-memory only).
        state_dir: durable-ledger directory; every lifecycle transition
            is WAL'd here and replayed on construction, so jobs the
            previous process accepted but never finished are
            re-enqueued automatically.  ``None`` (default) disables
            the ledger — the pre-existing in-memory behaviour.
        max_queue_depth: bound on jobs queued-or-running; a new-job
            submission beyond it raises :class:`QueueFullError`
            (mapped to HTTP 429).  ``None`` (default) is unbounded.
        retry_after_s: the ``Retry-After`` hint attached to admission
            rejections.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 8,
        runner=run_spec,
        journal_capacity: int = 1024,
        progress_interval: float = 0.5,
        flight_dir: str | None = None,
        job_workers: int = 1,
        state_dir: str | None = None,
        max_queue_depth: int | None = None,
        retry_after_s: float = 1.0,
    ) -> None:
        if job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {job_workers}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.workers = workers
        self.job_workers = job_workers
        self.cache_dir = cache_dir
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self._runner = runner
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._draining = False
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = float(retry_after_s)
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-service-job"
        )
        self.journal = EventJournal(journal_capacity)
        self.progress_interval = progress_interval
        self.flight_dir = flight_dir or checkpoint_dir or cache_dir
        self.started_at = time.time()
        # Uptime is derived from the monotonic clock: a wall-clock step
        # (NTP slew, DST, operator settimeofday) must not make healthz
        # uptime jump or go negative.  ``started_at`` stays wall-clock
        # for display.
        self.started_monotonic = time.monotonic()
        # Baseline-counter contract (cf. observability._BASELINE_COUNTERS):
        # every healthz/telemetry consumer may rely on the service keys
        # existing, even before the first job — so a burst with zero
        # failures reports `service.jobs_failed = 0`, not a missing key.
        for name in (
            "service.jobs_accepted",
            "service.jobs_deduped",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.jobs_cancelled",
            "service.jobs_recovered",
            "service.jobs_rejected",
            "service.jobs_deadline_exceeded",
            "service.jobs_lost",
            "service.requests",
            "service.events",
            "service.events_dropped",
        ):
            registry.counter(name)
        registry.gauge("service.queue_depth")
        set_gauge("service.draining", 0)
        self._ledger = JobLedger(state_dir) if state_dir else None
        self._recover()

    def uptime_seconds(self) -> float:
        """Monotonic seconds since this manager was constructed."""
        return time.monotonic() - self.started_monotonic

    # ------------------------------------------------------------------
    # Submission / lookup (called from the HTTP handlers)
    # ------------------------------------------------------------------
    def submit(self, raw_spec: object) -> tuple[Job, bool]:
        """Queue a spec (or attach to its existing job).

        Returns ``(job, created)`` — ``created`` is False when the
        submission deduped onto a live or completed job.  A job that
        previously *failed* (or was cancelled) is retried: same id,
        state reset to queued.  Raises
        :class:`~repro.service.spec.SpecError` on an invalid spec and
        :class:`AdmissionError` when new work is refused (bounded
        queue, drain in progress, or an injected ``reject_burst``).
        Dedupes are never refused — attaching to existing work costs
        nothing and is exactly what a retrying client needs.
        """
        spec = normalize_spec(raw_spec)
        job_id = spec_fingerprint(spec)
        plan = faults.active_plan()
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.status not in RETRYABLE_STATUSES:
                job.submissions += 1
                incr("service.jobs_deduped")
                _log.info(
                    "job.deduped", job_id=job_id, status=job.status,
                    submissions=job.submissions,
                )
                self.journal.append(
                    "job.deduped", job_id=job_id, run_id=job_id,
                    status=job.status, submissions=job.submissions,
                )
                return job, False
            self._admit_locked(job_id, plan)
            if job is None:
                job = Job(id=job_id, spec=spec, created_at=time.time())
                self._jobs[job_id] = job
            else:
                # Retry of a failed/cancelled job: keep the id and
                # submission count, clear the old terminal state.
                job.submissions += 1
                job.status = "queued"
                job.error = None
                job.error_code = None
                job.result = None
                job.started_at = None
                job.finished_at = None
                job.final_counters = None
                job.scope = None
                job.telemetry = None
                job.recovered = False
                job.cancel_token = cancellation.CancelToken()
            incr("service.jobs_accepted")
            self._update_queue_depth_locked()
        # The accepted record is durable before the client hears "201":
        # a crash after this point owes the job; a crash before it
        # never acknowledged the submission.
        self._ledger_record(
            "accepted", job_id, spec=job.spec,
            submissions=job.submissions, created_at=job.created_at,
        )
        _log.info("job.accepted", job_id=job_id, run_id=job_id,
                  kind=spec["kind"])
        self.journal.append(
            "job.accepted", job_id=job_id, run_id=job_id, kind=spec["kind"],
            submissions=job.submissions,
        )
        self._pool.submit(self._execute, job_id)
        return job, True

    def _admit_locked(self, job_id: str, plan) -> None:
        """Admission control for genuinely new work (lock held)."""
        if self._draining:
            incr("service.jobs_rejected")
            _log.warning("job.rejected", job_id=job_id, reason="draining")
            raise DrainingError(
                "service is draining; no new work accepted",
                retry_after=self.retry_after_s,
            )
        if (
            plan is not None
            and plan.service_action("reject_burst", "admission") is not None
        ):
            incr("service.jobs_rejected")
            _log.warning(
                "job.rejected", job_id=job_id, reason="reject_burst"
            )
            raise QueueFullError(
                "queue full (injected reject burst)",
                retry_after=self.retry_after_s,
            )
        if self.max_queue_depth is not None:
            depth = sum(
                1
                for j in self._jobs.values()
                if j.status in ("queued", "running")
            )
            if depth >= self.max_queue_depth:
                incr("service.jobs_rejected")
                _log.warning(
                    "job.rejected", job_id=job_id,
                    reason="queue-full", depth=depth,
                )
                raise QueueFullError(
                    f"queue full ({depth}/{self.max_queue_depth} jobs "
                    "queued or running)",
                    retry_after=self.retry_after_s,
                )

    def cancel(self, job_id: str) -> tuple[Job | None, str]:
        """Request cancellation of one job (``DELETE /v1/jobs/{id}``).

        Returns ``(job, outcome)``:

        * ``("missing")`` — no such job (404 upstream);
        * ``("terminal")`` — already completed/failed/cancelled; the
          transition is refused (409 upstream) because terminal state,
          including a completed result, is immutable;
        * ``("cancelled")`` — the job was still queued and is now
          terminally cancelled (200 upstream);
        * ``("cancelling")`` — the job is running; its token is
          cancelled and the build will stop at the next checkpoint
          boundary (202 upstream).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None, "missing"
            if job.status in TERMINAL_STATUSES:
                return job, "terminal"
            if job.status == "queued":
                job.status = "cancelled"
                job.error = "cancelled before start"
                job.error_code = "cancelled"
                job.finished_at = time.time()
                job.cancel_token.cancel()
                self._update_queue_depth_locked()
                outcome = "cancelled"
            else:
                job.cancel_token.cancel()
                outcome = "cancelling"
        if outcome == "cancelled":
            incr("service.jobs_cancelled")
            _log.info("job.cancelled", job_id=job_id, phase="queued")
            self.journal.append(
                "job.cancelled", job_id=job_id, run_id=job_id,
                phase="queued",
            )
            self._ledger_record("cancelled", job_id, error=job.error)
        else:
            _log.info("job.cancel_requested", job_id=job_id)
            self.journal.append(
                "job.cancel_requested", job_id=job_id, run_id=job_id,
            )
        return job, outcome

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the healthz ``jobs`` block)."""
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] += 1
            return out

    def queue_depth(self) -> int:
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.status in ("queued", "running")
            )

    def shutdown(self) -> None:
        """Stop accepting work; running jobs are abandoned (their
        checkpoints make a later resubmission resume, not restart)."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has been called."""
        return self._draining

    def begin_drain(self) -> None:
        """Flip the manager into drain mode (idempotent).

        New-job submissions raise :class:`DrainingError` from here on
        (dedupes onto existing jobs still work — a retrying client must
        be able to find its job), ``/v1/readyz`` goes 503 upstream, and
        the ``service.draining`` gauge goes to 1.
        """
        with self._lock:
            if self._draining:
                return
            self._draining = True
        set_gauge("service.draining", 1)
        _log.warning("service.draining")

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: let running jobs finish, strand nothing.

        Queued-but-unstarted jobs have their pool futures cancelled —
        with a ledger they stay ``accepted`` on disk and are recovered
        on the next boot; running jobs get up to ``timeout`` seconds to
        checkpoint-and-finish.  Returns True when nothing is left
        running (a False return still exits cleanly upstream: the
        stragglers' checkpoints plus ledger records make the next boot
        resume them).
        """
        self.begin_drain()
        self._pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                running = sum(
                    1
                    for job in self._jobs.values()
                    if job.status == "running"
                )
            if running == 0:
                _log.info("service.drained")
                return True
            if time.monotonic() >= deadline:
                _log.warning("service.drain_timeout", running=running)
                return False
            time.sleep(0.05)

    # ------------------------------------------------------------------
    # Durable ledger (crash recovery)
    # ------------------------------------------------------------------
    def _ledger_record(self, type_: str, job_id: str, **fields) -> None:
        """Append one transition to the ledger, if one is configured.

        Disk trouble is logged and degrades to in-memory operation —
        a full disk must not turn a completing job into a failed one.
        """
        if self._ledger is None:
            return
        try:
            self._ledger.record(type_, job_id, **fields)
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning(
                "ledger.write_failed", type=type_, job_id=job_id,
                error=str(exc),
            )

    def _recover(self) -> None:
        """Replay the ledger; re-enqueue every job the last boot owed.

        Jobs whose latest record is terminal are dropped (their results
        live in the result cache).  A non-terminal job without an
        intact ``accepted`` record (torn write on the only line that
        carries the spec) cannot be re-run and is counted as
        ``service.jobs_lost`` — loudly, in logs and healthz, rather
        than silently forgotten.  The ledger is then compacted to the
        live set.
        """
        if self._ledger is None:
            return
        states, skipped = self._ledger.replay()
        live: dict[str, dict] = {}
        lost = 0
        for job_id, state in sorted(states.items()):
            if state["status"] in TERMINAL_STATUSES:
                continue
            raw_spec = state.get("spec")
            try:
                if not isinstance(raw_spec, dict):
                    raise SpecError(
                        "invalid-spec", "no intact accepted record"
                    )
                spec = normalize_spec(raw_spec)
                if spec_fingerprint(spec) != job_id:
                    raise SpecError(
                        "invalid-spec", "spec does not match job id"
                    )
            except SpecError as exc:
                lost += 1
                _log.warning(
                    "ledger.job_lost", job_id=job_id, reason=str(exc)
                )
                continue
            state["spec"] = spec
            live[job_id] = state
        if lost:
            incr("service.jobs_lost", lost)
        self._ledger.compact(live)
        if not live:
            return
        order = sorted(
            live.items(), key=lambda kv: (kv[1]["created_at"] or 0.0, kv[0])
        )
        for job_id, state in order:
            job = Job(
                id=job_id,
                spec=state["spec"],
                submissions=int(state["submissions"]),
                created_at=float(state["created_at"] or time.time()),
                recovered=True,
            )
            with self._lock:
                self._jobs[job_id] = job
                self._update_queue_depth_locked()
            incr("service.jobs_recovered")
            _log.info(
                "job.recovered", job_id=job_id, run_id=job_id,
                kind=job.spec["kind"],
            )
            self.journal.append(
                "job.recovered", job_id=job_id, run_id=job_id,
                kind=job.spec["kind"], submissions=job.submissions,
            )
            self._pool.submit(self._execute, job_id)

    # ------------------------------------------------------------------
    # Execution (worker thread)
    # ------------------------------------------------------------------
    def _update_queue_depth_locked(self) -> None:
        depth = sum(
            1
            for job in self._jobs.values()
            if job.status in ("queued", "running")
        )
        set_gauge("service.queue_depth", depth)

    def _progress_event(self, job: Job) -> None:
        progress = job.progress()
        self.journal.append(
            "job.progress",
            job_id=job.id,
            run_id=job.id,
            cells_done=progress["cells_done"],
            cells_total=progress["cells_total"],
            counters=progress["counters"],
        )

    def _freeze_scope_locked(self, job: Job) -> None:
        """Freeze the job's final counters and telemetry off its scope.

        Called before the terminal service accounting (``incr`` of
        ``service.jobs_completed`` etc. happens inside the job's
        RunContext), so the frozen snapshot contains exactly the job's
        own work and nothing of the manager's bookkeeping.
        """
        job.final_counters = {
            name: job.scope.counter_value(name) for name in PROGRESS_COUNTERS
        }
        job.telemetry = job.scope.snapshot()

    def _execute(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            if job.status != "queued":  # cancelled-while-queued, retry race
                return
            job.status = "running"
            job.started_at = time.time()
            job.scope = RunScope(job_id)
            token = job.cancel_token
            deadline_s = job.spec.get("deadline_s")
        plan = faults.active_plan()
        if plan is not None:
            hit = plan.service_action("job_deadline", "job.start")
            if hit is not None:
                deadline_s = hit.seconds
                _log.warning(
                    "job.deadline_injected", job_id=job_id,
                    seconds=deadline_s,
                )
        if deadline_s is not None:
            # The budget runs from *submission*, so queue time counts —
            # a job recovered after a long outage can be already due.
            remaining = job.created_at + float(deadline_s) - time.time()
            token.set_deadline(max(0.0, remaining))
        # The started record is durable before any work happens: a
        # crash mid-build replays as "owed" and resumes on next boot.
        self._ledger_record("started", job_id)
        # The whole execution — including terminal logging — runs
        # inside the job's RunContext: instrumentation dual-writes into
        # the job's scope and every log event is stamped run_id=job_id.
        with RunContext(scope=job.scope):
            _log.info("job.start", job_id=job_id, kind=job.spec["kind"])
            self.journal.append(
                "job.started", job_id=job_id, run_id=job_id,
                kind=job.spec["kind"],
            )
            # Every job emits at least one progress event (even one
            # that finishes inside the first ticker interval), so
            # stream clients always see accepted -> started ->
            # progress -> terminal.
            self._progress_event(job)
            ticker_stop = threading.Event()

            def _tick() -> None:
                while not ticker_stop.wait(self.progress_interval):
                    self._progress_event(job)

            ticker = threading.Thread(
                target=_tick, name="repro-service-progress", daemon=True
            )
            ticker.start()
            try:
                with cancellation.active(token):
                    token.check()
                    result = self._runner(
                        job.spec,
                        workers=self.workers,
                        cache_dir=self.cache_dir,
                        checkpoint_dir=self.checkpoint_dir,
                        checkpoint_every=self.checkpoint_every,
                    )
            except cancellation.CancelledError as exc:
                ticker_stop.set()
                ticker.join()
                self._finish_stopped(job, exc)
                return
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                ticker_stop.set()
                ticker.join()
                with self._lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                    self._freeze_scope_locked(job)
                    self._update_queue_depth_locked()
                incr("service.jobs_failed")
                observe(
                    "service.job_seconds", job.finished_at - job.started_at
                )
                _log.warning("job.failed", job_id=job_id, error=job.error)
                self.journal.append(
                    "job.failed", job_id=job_id, run_id=job_id,
                    error=job.error,
                )
                self._ledger_record("failed", job_id, error=job.error)
                self._dump_flight(job)
                self._dump_telemetry(job)
                return
            ticker_stop.set()
            ticker.join()
            with self._lock:
                job.result = result
                job.status = "completed"
                job.finished_at = time.time()
                self._freeze_scope_locked(job)
                self._update_queue_depth_locked()
            incr("service.jobs_completed")
            observe("service.job_seconds", job.finished_at - job.started_at)
            _log.info(
                "job.completed",
                job_id=job_id,
                seconds=round(job.finished_at - job.started_at, 3),
            )
            self.journal.append(
                "job.completed",
                job_id=job_id,
                run_id=job_id,
                seconds=round(job.finished_at - job.started_at, 6),
            )
            self._ledger_record("completed", job_id)
            self._dump_telemetry(job)

    def _finish_stopped(self, job: Job, exc: cancellation.CancelledError) -> None:
        """Terminal transition for a cooperatively stopped job.

        A deadline expiry counts as a *failure* (the service broke its
        budget promise, the client should see an error) with wire code
        ``deadline-exceeded``; an operator cancellation gets its own
        terminal ``cancelled`` status.  Either way the last checkpoint
        flush is already on disk, so a resubmission resumes rather
        than restarts.
        """
        deadline = isinstance(exc, cancellation.DeadlineExceeded)
        with self._lock:
            job.status = "failed" if deadline else "cancelled"
            job.error = str(exc)
            job.error_code = exc.code
            job.finished_at = time.time()
            self._freeze_scope_locked(job)
            self._update_queue_depth_locked()
        observe("service.job_seconds", job.finished_at - job.started_at)
        if deadline:
            incr("service.jobs_failed")
            incr("service.jobs_deadline_exceeded")
            _log.warning(
                "job.deadline_exceeded", job_id=job.id, error=job.error
            )
            self.journal.append(
                "job.failed", job_id=job.id, run_id=job.id,
                error=job.error, error_code=job.error_code,
            )
            self._ledger_record(
                "failed", job.id, error=job.error, error_code=job.error_code
            )
            self._dump_flight(job)
        else:
            incr("service.jobs_cancelled")
            _log.info("job.cancelled", job_id=job.id, phase="running")
            self.journal.append(
                "job.cancelled", job_id=job.id, run_id=job.id,
                phase="running",
            )
            self._ledger_record(
                "cancelled", job.id, error=job.error
            )
        self._dump_telemetry(job)

    def _dump_flight(self, job: Job) -> None:
        """Flight recorder: persist the journal ring beside a failure.

        The ring as it stood when the job failed — submissions, other
        jobs' interleaved events, the failing job's progress cadence —
        is exactly the context a post-mortem wants and exactly what a
        later status query cannot reconstruct.  Best-effort: a disk
        error is logged, never allowed to mask the job failure itself.
        """
        if not self.flight_dir:
            return
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            # The terminal job.failed event was already journaled, so
            # the current sequence number is unique per failure — a
            # retried-and-refailed job gets a fresh dump, never a
            # clobbered one.
            path = os.path.join(
                self.flight_dir,
                f"flight-{job.id[:16]}-{self.journal.last_seq}.json",
            )
            with open(path, "w") as fh:
                json.dump(
                    {
                        "schema": "repro.flight/1",
                        "job": job.view(),
                        "dropped_events": self.journal.dropped,
                        "events": self.journal.snapshot(),
                    },
                    fh,
                    indent=2,
                )
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning(
                "flight.write_failed", job_id=job.id, error=str(exc)
            )
            return
        _log.info("flight.written", job_id=job.id, path=path)

    def _dump_telemetry(self, job: Job) -> None:
        """Persist the job's frozen telemetry snapshot beside the
        flight-recorder dumps (``telemetry-{id16}.json``), so a
        post-mortem or an offline join against logs/traces does not
        need the server process alive.  Best-effort, like the flight
        recorder: a disk error is logged and swallowed.
        """
        if not self.flight_dir or job.telemetry is None:
            return
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            path = os.path.join(
                self.flight_dir, f"telemetry-{job.id[:16]}.json"
            )
            with open(path, "w") as fh:
                json.dump(job.telemetry, fh, indent=2)
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning(
                "telemetry.write_failed", job_id=job.id, error=str(exc)
            )
            return
        _log.debug("telemetry.written", job_id=job.id, path=path)
