"""Job lifecycle for the yield-analysis service.

A job is one normalized spec (see :mod:`repro.service.spec`) moving
through ``queued -> running -> completed | failed``.  The
:class:`JobManager` owns the registry of jobs, dedupes submissions by
the spec fingerprint (which *is* the job id), and executes each job
inside its own :class:`~repro.observability.context.RunContext` with
``run_id == job_id``: every counter bump, span, and diagnostic the
job produces lands in the job's own scope (exactly — not
reconstructed from global-counter deltas), alongside the process-wide
totals.  Because attribution is scoped, jobs may execute concurrently
(``job_workers > 1``) with per-job progress, results, and telemetry
identical to a serial run; concurrency *inside* a job still comes from
the :class:`~repro.parallel.executor.ParallelExecutor` fan-out over
grid cells.  A job's final scope snapshot is frozen at the terminal
transition, persisted beside the flight-recorder dumps, and served at
``GET /v1/jobs/{id}/telemetry``.

Service counters (all under the ``repro.telemetry/1`` schema, see
``docs/service.md``):

* ``service.jobs_accepted`` — new (or failed-and-retried) specs queued;
* ``service.jobs_deduped`` — submissions attached to an existing job;
* ``service.jobs_completed`` / ``service.jobs_failed`` — terminal states;
* ``service.queue_depth`` (gauge) — jobs currently queued or running;
* ``service.job_seconds`` (histogram) — per-job wall time;
* ``service.events`` / ``service.events_dropped`` — journal appends and
  ring-buffer evictions (see :mod:`repro.service.journal`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.observability.context import RunContext, RunScope
from repro.observability.log import get_logger
from repro.observability.metrics import incr, observe, registry, set_gauge
from repro.service.journal import EventJournal
from repro.service.spec import job_cells, normalize_spec, spec_fingerprint

_log = get_logger("service.jobs")

#: Counters the per-job progress report carries, read from the job's
#: own run scope — exact attribution regardless of how many jobs are
#: executing concurrently.
PROGRESS_COUNTERS = (
    "mc.samples",
    "mc.estimates",
    "solver.calls",
    "cache.hits",
    "cache.misses",
    "checkpoint.flushes",
    "checkpoint.resumed_cells",
    "checkpoint.completed_cells",
)

#: Job lifecycle states (terminal: ``completed``, ``failed``).
JOB_STATUSES = ("queued", "running", "completed", "failed")


def run_spec(
    spec: dict,
    workers: int = 1,
    cache_dir: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 8,
) -> dict:
    """Execute one normalized spec; return the JSON-ready result.

    This is the default job runner: it builds an
    :meth:`ExperimentContext.from_spec` context (so the build shards
    over the executor, persists to the result cache, and checkpoints
    mid-build) and evaluates the requested surface at its own grid
    nodes.
    """
    ctx = ExperimentContext.from_spec(
        spec,
        workers=workers,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    if spec["kind"] == "table":
        from repro.failures.analysis import MECHANISMS

        surfaces = []
        corner_grid: list[float] = []
        for vbody in spec["vbody_levels"]:
            table = ctx.table(vbody)
            corner_grid = [float(x) for x in table.grid]
            surfaces.append(
                {
                    "vbody": vbody,
                    "log10_probability": {
                        name: [
                            float(v)
                            for v in np.log10(
                                np.clip(
                                    table.series(table.grid, name),
                                    1e-300,
                                    1.0,
                                )
                            )
                        ]
                        for name in MECHANISMS + ("any",)
                    },
                    "diagnostics": (
                        dataclasses.asdict(table.diagnostics)
                        if table.diagnostics is not None
                        else None
                    ),
                }
            )
        return {
            "kind": "table",
            "corner_grid": corner_grid,
            "surfaces": surfaces,
        }

    from repro.experiments.asb import HoldProbabilityTable

    corner_grid = [
        float(x) for x in np.linspace(-0.12, 0.12, spec["corner_points"])
    ]
    table = HoldProbabilityTable(
        ctx,
        corner_grid=np.array(corner_grid),
        vsb_grid=np.array(spec["vsb_levels"]),
    )
    return {
        "kind": "hold-surface",
        "corner_grid": corner_grid,
        "vsb_levels": spec["vsb_levels"],
        "log10_probability": [
            [
                float(np.log10(max(table.probability(c, v), 1e-300)))
                for v in spec["vsb_levels"]
            ]
            for c in corner_grid
        ],
        "diagnostics": (
            dataclasses.asdict(table.diagnostics)
            if table.diagnostics is not None
            else None
        ),
    }


@dataclass
class Job:
    """One spec's journey through the service."""

    id: str
    spec: dict
    status: str = "queued"
    submissions: int = 1
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result: dict | None = None
    #: The job's run scope (``run_id == id``), created when execution
    #: starts; everything the job does is collected here, exactly.
    scope: RunScope | None = field(default=None, repr=False)
    #: Final per-job counter values, frozen at the terminal transition.
    final_counters: dict[str, float] | None = None
    #: Final scope snapshot (``repro.telemetry/1`` + ``run_id``),
    #: frozen at the terminal transition and served at
    #: ``GET /v1/jobs/{id}/telemetry``.
    telemetry: dict | None = field(default=None, repr=False)

    def progress(self) -> dict:
        """The wire-format progress block (see docs/service.md).

        Counters are read live from the job's own run scope — exact
        per-job attribution at any ``job_workers`` width.
        ``cells_done`` is exact when the server runs with a checkpoint
        directory (the checkpoint store counts completed/resumed cells
        at the same granularity the build shards in); without one it is
        ``None`` and the raw counters still tell the story.
        """
        cells_total = job_cells(self.spec)
        if self.final_counters is not None:
            counters = dict(self.final_counters)
        elif self.scope is not None:
            counters = {
                name: self.scope.counter_value(name)
                for name in PROGRESS_COUNTERS
            }
        else:  # queued: nothing attributable yet
            counters = {name: 0.0 for name in PROGRESS_COUNTERS}
        checkpointed = (
            counters["checkpoint.completed_cells"]
            + counters["checkpoint.resumed_cells"]
        )
        cells_done: float | None
        if self.status == "completed":
            cells_done = float(cells_total)
        elif checkpointed > 0:
            cells_done = min(float(cells_total), checkpointed)
        else:
            cells_done = None
        return {
            "cells_total": cells_total,
            "cells_done": cells_done,
            "counters": counters,
        }

    def view(self) -> dict:
        """The wire-format job object (``GET /v1/jobs/{id}``)."""
        elapsed = None
        if self.started_at is not None:
            end = self.finished_at if self.finished_at is not None else time.time()
            elapsed = round(end - self.started_at, 6)
        return {
            "id": self.id,
            "run_id": self.id,
            "kind": self.spec["kind"],
            "status": self.status,
            "spec": self.spec,
            "submissions": self.submissions,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": elapsed,
            "error": self.error,
            "progress": self.progress(),
        }

    def telemetry_snapshot(self) -> dict | None:
        """The job's telemetry: frozen if terminal, live if running.

        ``None`` while the job is still queued (no scope exists yet).
        A live snapshot races the job thread's writes, so dict
        iteration may transiently fail; retried a few times — the
        scope is only ever appended to, never torn down mid-run.
        """
        if self.telemetry is not None:
            return self.telemetry
        if self.scope is None:
            return None
        for _ in range(5):
            try:
                return self.scope.snapshot()
            except RuntimeError:  # pragma: no cover - write race
                continue
        return self.scope.snapshot()  # pragma: no cover - write race


class JobManager:
    """Owns job state, dedupe, and the job execution pool.

    Args:
        workers: ``ParallelExecutor`` fan-out width inside each job.
        job_workers: how many jobs may execute concurrently (default
            1 — serial, the pre-existing behaviour).  Safe to raise
            because attribution is run-scoped: each job's progress and
            telemetry come from its own scope, so results and per-job
            snapshots are identical at any width.
        cache_dir: result-cache directory; warm resubmissions of a
            completed-and-evicted job reload from here instead of
            recomputing (and two jobs sharing sub-artifacts share them).
        checkpoint_dir: checkpoint directory; a job killed mid-build
            (server crash, restart) resumes from the last flush when
            the same spec is resubmitted.
        checkpoint_every: completed cells per checkpoint flush.
        runner: job execution callable ``(spec, **exec_opts) -> result``
            — :func:`run_spec` by default, injectable for tests.
        journal_capacity: ring-buffer size of the event journal.
        progress_interval: seconds between ``job.progress`` events for
            a running job.
        flight_dir: where failed jobs dump their flight-recorder JSON
            and completed/failed jobs persist their telemetry snapshot
            (defaults to ``checkpoint_dir``, then ``cache_dir``; with
            neither configured both stay in-memory only).
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 8,
        runner=run_spec,
        journal_capacity: int = 1024,
        progress_interval: float = 0.5,
        flight_dir: str | None = None,
        job_workers: int = 1,
    ) -> None:
        if job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {job_workers}")
        self.workers = workers
        self.job_workers = job_workers
        self.cache_dir = cache_dir
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self._runner = runner
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=job_workers, thread_name_prefix="repro-service-job"
        )
        self.journal = EventJournal(journal_capacity)
        self.progress_interval = progress_interval
        self.flight_dir = flight_dir or checkpoint_dir or cache_dir
        self.started_at = time.time()
        # Uptime is derived from the monotonic clock: a wall-clock step
        # (NTP slew, DST, operator settimeofday) must not make healthz
        # uptime jump or go negative.  ``started_at`` stays wall-clock
        # for display.
        self.started_monotonic = time.monotonic()
        # Baseline-counter contract (cf. observability._BASELINE_COUNTERS):
        # every healthz/telemetry consumer may rely on the service keys
        # existing, even before the first job — so a burst with zero
        # failures reports `service.jobs_failed = 0`, not a missing key.
        for name in (
            "service.jobs_accepted",
            "service.jobs_deduped",
            "service.jobs_completed",
            "service.jobs_failed",
            "service.requests",
            "service.events",
            "service.events_dropped",
        ):
            registry.counter(name)
        registry.gauge("service.queue_depth")

    def uptime_seconds(self) -> float:
        """Monotonic seconds since this manager was constructed."""
        return time.monotonic() - self.started_monotonic

    # ------------------------------------------------------------------
    # Submission / lookup (called from the HTTP handlers)
    # ------------------------------------------------------------------
    def submit(self, raw_spec: object) -> tuple[Job, bool]:
        """Queue a spec (or attach to its existing job).

        Returns ``(job, created)`` — ``created`` is False when the
        submission deduped onto a live or completed job.  A job that
        previously *failed* is retried: same id, state reset to
        queued.  Raises :class:`~repro.service.spec.SpecError` on an
        invalid spec.
        """
        spec = normalize_spec(raw_spec)
        job_id = spec_fingerprint(spec)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.status != "failed":
                job.submissions += 1
                incr("service.jobs_deduped")
                _log.info(
                    "job.deduped", job_id=job_id, status=job.status,
                    submissions=job.submissions,
                )
                self.journal.append(
                    "job.deduped", job_id=job_id, run_id=job_id,
                    status=job.status, submissions=job.submissions,
                )
                return job, False
            if job is None:
                job = Job(id=job_id, spec=spec, created_at=time.time())
                self._jobs[job_id] = job
            else:
                # Retry of a failed job: keep the id and submission
                # count, clear the failure.
                job.submissions += 1
                job.status = "queued"
                job.error = None
                job.result = None
                job.started_at = None
                job.finished_at = None
                job.final_counters = None
                job.scope = None
                job.telemetry = None
            incr("service.jobs_accepted")
            self._update_queue_depth_locked()
        _log.info("job.accepted", job_id=job_id, run_id=job_id,
                  kind=spec["kind"])
        self.journal.append(
            "job.accepted", job_id=job_id, run_id=job_id, kind=spec["kind"],
            submissions=job.submissions,
        )
        self._pool.submit(self._execute, job_id)
        return job, True

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state (the healthz ``jobs`` block)."""
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] += 1
            return out

    def queue_depth(self) -> int:
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.status in ("queued", "running")
            )

    def shutdown(self) -> None:
        """Stop accepting work; running jobs are abandoned (their
        checkpoints make a later resubmission resume, not restart)."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Execution (worker thread)
    # ------------------------------------------------------------------
    def _update_queue_depth_locked(self) -> None:
        depth = sum(
            1
            for job in self._jobs.values()
            if job.status in ("queued", "running")
        )
        set_gauge("service.queue_depth", depth)

    def _progress_event(self, job: Job) -> None:
        progress = job.progress()
        self.journal.append(
            "job.progress",
            job_id=job.id,
            run_id=job.id,
            cells_done=progress["cells_done"],
            cells_total=progress["cells_total"],
            counters=progress["counters"],
        )

    def _freeze_scope_locked(self, job: Job) -> None:
        """Freeze the job's final counters and telemetry off its scope.

        Called before the terminal service accounting (``incr`` of
        ``service.jobs_completed`` etc. happens inside the job's
        RunContext), so the frozen snapshot contains exactly the job's
        own work and nothing of the manager's bookkeeping.
        """
        job.final_counters = {
            name: job.scope.counter_value(name) for name in PROGRESS_COUNTERS
        }
        job.telemetry = job.scope.snapshot()

    def _execute(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            if job.status != "queued":  # pragma: no cover - retry race
                return
            job.status = "running"
            job.started_at = time.time()
            job.scope = RunScope(job_id)
        # The whole execution — including terminal logging — runs
        # inside the job's RunContext: instrumentation dual-writes into
        # the job's scope and every log event is stamped run_id=job_id.
        with RunContext(scope=job.scope):
            _log.info("job.start", job_id=job_id, kind=job.spec["kind"])
            self.journal.append(
                "job.started", job_id=job_id, run_id=job_id,
                kind=job.spec["kind"],
            )
            # Every job emits at least one progress event (even one
            # that finishes inside the first ticker interval), so
            # stream clients always see accepted -> started ->
            # progress -> terminal.
            self._progress_event(job)
            ticker_stop = threading.Event()

            def _tick() -> None:
                while not ticker_stop.wait(self.progress_interval):
                    self._progress_event(job)

            ticker = threading.Thread(
                target=_tick, name="repro-service-progress", daemon=True
            )
            ticker.start()
            try:
                result = self._runner(
                    job.spec,
                    workers=self.workers,
                    cache_dir=self.cache_dir,
                    checkpoint_dir=self.checkpoint_dir,
                    checkpoint_every=self.checkpoint_every,
                )
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                ticker_stop.set()
                ticker.join()
                with self._lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.finished_at = time.time()
                    self._freeze_scope_locked(job)
                    self._update_queue_depth_locked()
                incr("service.jobs_failed")
                observe(
                    "service.job_seconds", job.finished_at - job.started_at
                )
                _log.warning("job.failed", job_id=job_id, error=job.error)
                self.journal.append(
                    "job.failed", job_id=job_id, run_id=job_id,
                    error=job.error,
                )
                self._dump_flight(job)
                self._dump_telemetry(job)
                return
            ticker_stop.set()
            ticker.join()
            with self._lock:
                job.result = result
                job.status = "completed"
                job.finished_at = time.time()
                self._freeze_scope_locked(job)
                self._update_queue_depth_locked()
            incr("service.jobs_completed")
            observe("service.job_seconds", job.finished_at - job.started_at)
            _log.info(
                "job.completed",
                job_id=job_id,
                seconds=round(job.finished_at - job.started_at, 3),
            )
            self.journal.append(
                "job.completed",
                job_id=job_id,
                run_id=job_id,
                seconds=round(job.finished_at - job.started_at, 6),
            )
            self._dump_telemetry(job)

    def _dump_flight(self, job: Job) -> None:
        """Flight recorder: persist the journal ring beside a failure.

        The ring as it stood when the job failed — submissions, other
        jobs' interleaved events, the failing job's progress cadence —
        is exactly the context a post-mortem wants and exactly what a
        later status query cannot reconstruct.  Best-effort: a disk
        error is logged, never allowed to mask the job failure itself.
        """
        if not self.flight_dir:
            return
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            # The terminal job.failed event was already journaled, so
            # the current sequence number is unique per failure — a
            # retried-and-refailed job gets a fresh dump, never a
            # clobbered one.
            path = os.path.join(
                self.flight_dir,
                f"flight-{job.id[:16]}-{self.journal.last_seq}.json",
            )
            with open(path, "w") as fh:
                json.dump(
                    {
                        "schema": "repro.flight/1",
                        "job": job.view(),
                        "dropped_events": self.journal.dropped,
                        "events": self.journal.snapshot(),
                    },
                    fh,
                    indent=2,
                )
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning(
                "flight.write_failed", job_id=job.id, error=str(exc)
            )
            return
        _log.info("flight.written", job_id=job.id, path=path)

    def _dump_telemetry(self, job: Job) -> None:
        """Persist the job's frozen telemetry snapshot beside the
        flight-recorder dumps (``telemetry-{id16}.json``), so a
        post-mortem or an offline join against logs/traces does not
        need the server process alive.  Best-effort, like the flight
        recorder: a disk error is logged and swallowed.
        """
        if not self.flight_dir or job.telemetry is None:
            return
        try:
            os.makedirs(self.flight_dir, exist_ok=True)
            path = os.path.join(
                self.flight_dir, f"telemetry-{job.id[:16]}.json"
            )
            with open(path, "w") as fh:
                json.dump(job.telemetry, fh, indent=2)
        except OSError as exc:  # pragma: no cover - disk trouble
            _log.warning(
                "telemetry.write_failed", job_id=job.id, error=str(exc)
            )
            return
        _log.debug("telemetry.written", job_id=job.id, path=path)
