"""Run the yield-analysis service from the shell::

    python -m repro.service --port 8642 \
        --cache-dir ~/.cache/repro --checkpoint-dir /var/tmp/repro-ckpt

``--port 0`` binds an ephemeral port; the chosen one is printed on the
``listening on`` line (machine-readable, used by the test harness and
CI).  ``--workers`` sets the in-job ``ParallelExecutor`` fan-out —
results are bit-identical at any count.  ``--job-workers`` sets how
many *jobs* execute concurrently — per-job attribution is run-scoped
(run_id == job_id), so results and telemetry are likewise identical
at any width.  ``--cache-dir`` makes
completed surfaces survive restarts (a resubmitted spec is served warm)
and ``--checkpoint-dir`` makes in-flight builds resumable (a spec
resubmitted after a crash continues from the last flush instead of
restarting).  See ``docs/service.md`` for the API this serves.

Crash safety: ``--state-dir`` arms the durable job ledger — every
accepted job survives SIGKILL and is re-enqueued on the next boot,
resuming through its checkpoints.  SIGTERM/SIGINT trigger a graceful
drain: ``/v1/readyz`` flips to 503, new submissions are rejected,
running jobs get ``--drain-timeout`` seconds to checkpoint-and-finish,
then the process exits 0 (stragglers resume on the next boot).
``--max-queue-depth`` bounds admission (429 + ``Retry-After``).
``REPRO_FAULT_PLAN`` arms a chaos plan (``service_crash``,
``job_deadline``, ``reject_burst``, and the task/write kinds) exactly
as the experiments CLI does.

Telemetry collection is always on in the server process — the
``service.*`` counters are part of the healthz contract, not an
optional extra; ``-v``/``--log-json`` additionally stream structured
request/job logs to stderr.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

from repro import faults, observability
from repro.service.jobs import JobManager
from repro.service.server import ServiceServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve SRAM yield analysis as an HTTP/JSON job API.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default 8642; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="ParallelExecutor fan-out inside each job (default 1; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--job-workers",
        type=int,
        default=1,
        metavar="N",
        help="jobs executing concurrently (default 1). Attribution is "
        "run-scoped, so per-job progress, results, and telemetry are "
        "identical at any width",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist computed surfaces to DIR; resubmitted specs are "
        "served warm across restarts",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="flush completed grid cells to DIR during builds; a spec "
        "resubmitted after a crash resumes from the last flush",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="completed cells per checkpoint flush (default 8)",
    )
    parser.add_argument(
        "--journal-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="event-journal ring size powering the /v1/events SSE "
        "streams (default 1024; overflow evicts the oldest event and "
        "counts service.events_dropped)",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="where failed jobs dump their flight-recorder event JSON "
        "(default: the checkpoint dir, then the cache dir; disabled "
        "with neither)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable job-ledger directory; accepted jobs survive "
        "SIGKILL and are re-enqueued on the next boot with the same "
        "DIR (disabled when unset)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, how long running jobs may "
        "checkpoint-and-finish before the process exits anyway "
        "(default 30; stragglers resume on the next boot)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="bound on jobs queued or running; new submissions beyond "
        "it get 429 with Retry-After (default: unbounded)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured request/job logs on stderr (-vv for debug)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="render logs as JSON lines instead of text",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.job_workers < 1:
        parser.error(f"--job-workers must be >= 1, got {args.job_workers}")
    if args.checkpoint_every < 1:
        parser.error(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.journal_capacity < 1:
        parser.error(
            f"--journal-capacity must be >= 1, got {args.journal_capacity}"
        )
    if args.drain_timeout < 0:
        parser.error(
            f"--drain-timeout must be >= 0, got {args.drain_timeout}"
        )
    if args.max_queue_depth is not None and args.max_queue_depth < 1:
        parser.error(
            f"--max-queue-depth must be >= 1, got {args.max_queue_depth}"
        )

    observability.configure(
        verbosity=args.verbose, json_lines=args.log_json, metrics=True
    )
    try:
        faults.install(faults.plan_from_env())
    except ValueError as exc:
        parser.error(str(exc))
    manager = JobManager(
        workers=args.workers,
        job_workers=args.job_workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        journal_capacity=args.journal_capacity,
        flight_dir=args.flight_dir,
        state_dir=args.state_dir,
        max_queue_depth=args.max_queue_depth,
    )
    server = ServiceServer(manager, host=args.host, port=args.port)

    async def run() -> bool:
        """Serve until a signal arrives, then drain; True = clean drain."""
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                signal.signal(sig, lambda *_: stop.set())
        await server.start()
        # Machine-readable: the harness parses the URL off this line.
        print(f"listening on {server.base_url}", flush=True)
        await stop.wait()
        # Graceful drain: readiness flips to 503 and new submissions
        # reject immediately; running jobs then get the drain window.
        print("draining", file=sys.stderr, flush=True)
        manager.begin_drain()
        drained = await asyncio.to_thread(manager.drain, args.drain_timeout)
        await server.stop()
        return drained

    try:
        drained = asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - second ^C mid-drain
        print("shutting down", file=sys.stderr)
        manager.shutdown()
        return 0
    if not drained:
        # Jobs are still running past the drain window.  Their ledger
        # records and checkpoint flushes are durable, so the next boot
        # resumes them; exiting through os._exit skips joining the
        # non-daemon pool threads that would otherwise hang exit.
        print("drain timeout; exiting (jobs resume on next boot)",
              file=sys.stderr, flush=True)
        sys.stderr.flush()
        sys.stdout.flush()
        os._exit(0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
