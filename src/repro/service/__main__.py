"""Run the yield-analysis service from the shell::

    python -m repro.service --port 8642 \
        --cache-dir ~/.cache/repro --checkpoint-dir /var/tmp/repro-ckpt

``--port 0`` binds an ephemeral port; the chosen one is printed on the
``listening on`` line (machine-readable, used by the test harness and
CI).  ``--workers`` sets the in-job ``ParallelExecutor`` fan-out —
results are bit-identical at any count.  ``--job-workers`` sets how
many *jobs* execute concurrently — per-job attribution is run-scoped
(run_id == job_id), so results and telemetry are likewise identical
at any width.  ``--cache-dir`` makes
completed surfaces survive restarts (a resubmitted spec is served warm)
and ``--checkpoint-dir`` makes in-flight builds resumable (a spec
resubmitted after a crash continues from the last flush instead of
restarting).  See ``docs/service.md`` for the API this serves.

Telemetry collection is always on in the server process — the
``service.*`` counters are part of the healthz contract, not an
optional extra; ``-v``/``--log-json`` additionally stream structured
request/job logs to stderr.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro import observability
from repro.service.jobs import JobManager
from repro.service.server import ServiceServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve SRAM yield analysis as an HTTP/JSON job API.",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (default 8642; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="ParallelExecutor fan-out inside each job (default 1; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--job-workers",
        type=int,
        default=1,
        metavar="N",
        help="jobs executing concurrently (default 1). Attribution is "
        "run-scoped, so per-job progress, results, and telemetry are "
        "identical at any width",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist computed surfaces to DIR; resubmitted specs are "
        "served warm across restarts",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="flush completed grid cells to DIR during builds; a spec "
        "resubmitted after a crash resumes from the last flush",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=8,
        metavar="N",
        help="completed cells per checkpoint flush (default 8)",
    )
    parser.add_argument(
        "--journal-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="event-journal ring size powering the /v1/events SSE "
        "streams (default 1024; overflow evicts the oldest event and "
        "counts service.events_dropped)",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="where failed jobs dump their flight-recorder event JSON "
        "(default: the checkpoint dir, then the cache dir; disabled "
        "with neither)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured request/job logs on stderr (-vv for debug)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="render logs as JSON lines instead of text",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.job_workers < 1:
        parser.error(f"--job-workers must be >= 1, got {args.job_workers}")
    if args.checkpoint_every < 1:
        parser.error(
            f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
        )
    if args.journal_capacity < 1:
        parser.error(
            f"--journal-capacity must be >= 1, got {args.journal_capacity}"
        )

    observability.configure(
        verbosity=args.verbose, json_lines=args.log_json, metrics=True
    )
    manager = JobManager(
        workers=args.workers,
        job_workers=args.job_workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        journal_capacity=args.journal_capacity,
        flight_dir=args.flight_dir,
    )
    server = ServiceServer(manager, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        # Machine-readable: the harness parses the URL off this line.
        print(f"listening on {server.base_url}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        manager.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
