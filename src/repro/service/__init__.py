"""Yield analysis as a service.

``repro.service`` promotes the experiments stack into a long-running
HTTP/JSON job server: clients ``POST`` experiment specs, the server
dedupes them by cache fingerprint, shards the build over the
:class:`~repro.parallel.executor.ParallelExecutor`, checkpoints
progress, and serves finished surfaces from the
:class:`~repro.parallel.cache.ResultCache` at in-memory latency on
warm hits.

Run it with ``python -m repro.service``; the API and wire format are
documented in ``docs/service.md``.
"""

from repro.service.jobs import Job, JobManager, run_spec
from repro.service.server import BackgroundServer, ServiceServer
from repro.service.spec import (
    SPEC_KINDS,
    SpecError,
    job_cells,
    normalize_spec,
    spec_fingerprint,
)

__all__ = [
    "BackgroundServer",
    "Job",
    "JobManager",
    "SPEC_KINDS",
    "ServiceServer",
    "SpecError",
    "job_cells",
    "normalize_spec",
    "run_spec",
    "spec_fingerprint",
]
