"""Sigma-scaled Gaussian importance sampling for rare failure events.

Cell failure probabilities in region B of the paper's Fig. 2 reach 1e-5
and below; plain Monte Carlo would need >= 1e7 samples per sweep point.
We instead draw the intra-die Vt deltas from an *inflated* Gaussian
(every sigma multiplied by ``scale``) and weight each sample by the
likelihood ratio

    w = prod_i  N(x_i; 0, sigma_i) / N(x_i; 0, scale * sigma_i)
      = scale^d * exp(-0.5 * sum_i (x_i/sigma_i)^2 (1 - 1/scale^2))

so the weighted indicator mean is an unbiased estimate of the true
failure probability while the tails are sampled orders of magnitude more
often.  ``scale = 1`` degenerates to plain MC; the estimator is
validated against plain MC in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability import _state
from repro.observability.diagnostics import weight_diagnostics
from repro.observability.metrics import incr, observe
from repro.sram.cell import TRANSISTORS, CellGeometry, cell_sigma_vt
from repro.technology.parameters import TechnologyParameters


@dataclass(frozen=True)
class ImportanceSample:
    """A weighted intra-die Vt sample set for one cell population.

    Attributes:
        dvt: transistor name -> deltas [V], each of shape (n,).
        weights: likelihood ratios, shape (n,); ``mean(weights) ~ 1``.
    """

    dvt: dict[str, np.ndarray]
    weights: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.weights.size


def importance_sample_dvt(
    tech: TechnologyParameters,
    geometry: CellGeometry,
    rng: np.random.Generator,
    size: int,
    scale: float = 2.0,
) -> ImportanceSample:
    """Draw ``size`` cells from the sigma-inflated proposal.

    Args:
        tech: technology card (supplies the Pelgrom sigmas).
        geometry: cell geometry.
        rng: random generator.
        size: number of cells.
        scale: sigma inflation factor (>= 1).  2.0 resolves
            probabilities down to ~1e-7 with ~1e5 samples.
    """
    if scale < 1.0:
        raise ValueError(f"scale must be >= 1, got {scale}")
    sigmas = cell_sigma_vt(tech, geometry)
    dvt: dict[str, np.ndarray] = {}
    z2_sum = np.zeros(size)
    for name in TRANSISTORS:
        sigma = sigmas[name]
        x = rng.normal(0.0, scale * sigma, size=size)
        dvt[name] = x
        z2_sum += np.square(x / sigma)
    d = len(TRANSISTORS)
    log_w = d * np.log(scale) - 0.5 * z2_sum * (1.0 - 1.0 / (scale * scale))
    weights = np.exp(log_w)
    if _state.enabled:
        # Effective-sample-size fraction (Kish): the "acceptance rate"
        # analogue for likelihood-ratio weighting — 1.0 means plain MC,
        # small values mean the proposal wastes most of its draws.  The
        # max-weight fraction is the complementary degeneracy signal:
        # near 1.0 means a single draw carries the whole estimate.
        incr("sampling.draws")
        incr("sampling.cells", size)
        health = weight_diagnostics(weights)
        observe("sampling.ess_fraction", health.ess_ratio)
        observe("sampling.max_weight_fraction", health.max_weight_fraction)
    return ImportanceSample(dvt=dvt, weights=weights)
