"""Leakage distributions: lognormal cells, Gaussian arrays (paper Eq. 2).

With Vt Gaussian and subthreshold leakage exponential in -Vt, each cell's
leakage is (to first order) lognormal.  The leakage of a memory is the
sum of many independent cell leakages, so by the central limit theorem it
is Gaussian with

    mu_MEM = N * mu_cell          sigma_MEM = sqrt(N) * sigma_cell

— the paper's Eq. 2, and the reason an *array* leakage monitor can
resolve the inter-die corner even though individual cell distributions
from different corners overlap heavily (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats


def normal_cdf(x: np.ndarray | float) -> np.ndarray | float:
    """Standard normal CDF (the paper's Phi)."""
    return sp_stats.norm.cdf(x)


@dataclass(frozen=True)
class LognormalFit:
    """Maximum-likelihood lognormal fit of positive samples.

    Attributes:
        mu: mean of log(x).
        sigma: standard deviation of log(x).
    """

    mu: float
    sigma: float

    @property
    def mean(self) -> float:
        """Mean of the fitted lognormal."""
        return float(np.exp(self.mu + 0.5 * self.sigma**2))

    @property
    def std(self) -> float:
        """Standard deviation of the fitted lognormal."""
        variance = (np.exp(self.sigma**2) - 1.0) * np.exp(
            2.0 * self.mu + self.sigma**2
        )
        return float(np.sqrt(variance))


def lognormal_fit(samples: np.ndarray) -> LognormalFit:
    """Fit a lognormal to positive ``samples`` by log-moment matching."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("cannot fit an empty sample")
    if np.any(samples <= 0):
        raise ValueError("lognormal fit requires strictly positive samples")
    logs = np.log(samples)
    return LognormalFit(mu=float(np.mean(logs)), sigma=float(np.std(logs)))


@dataclass(frozen=True)
class NormalDistribution:
    """A Gaussian summary (mean, std)."""

    mean: float
    std: float

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """P(X <= x)."""
        if self.std == 0:
            return np.where(np.asarray(x, dtype=float) >= self.mean, 1.0, 0.0)
        return normal_cdf((np.asarray(x, dtype=float) - self.mean) / self.std)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` values."""
        return rng.normal(self.mean, self.std, size=size)


def array_leakage_distribution(
    cell_leakage_samples: np.ndarray, n_cells: int
) -> NormalDistribution:
    """CLT Gaussian for the total leakage of an ``n_cells`` array.

    ``cell_leakage_samples`` is a Monte-Carlo sample of single-cell
    leakages at the corner of interest; the array total is Gaussian with
    mean ``N * mean_cell`` and std ``sqrt(N) * std_cell`` (paper Eq. 2).
    """
    if n_cells <= 0:
        raise ValueError("n_cells must be positive")
    samples = np.asarray(cell_leakage_samples, dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two cell samples")
    return NormalDistribution(
        mean=n_cells * float(np.mean(samples)),
        std=float(np.sqrt(n_cells)) * float(np.std(samples, ddof=1)),
    )
