"""Yield metrics: leakage yield (Eqs. 3-4) and parametric yield (Eq. 1).

*Leakage yield* is the fraction of dies whose total memory leakage stays
below a maximum bound L_MAX; per corner it is the Gaussian tail
probability ``Phi((L_MAX - mu_MEM) / sigma_MEM)`` (Eq. 3), and the yield
is its expectation over the inter-die distribution (Eq. 4).

*Parametric yield* is the fraction of dies whose memory is repairable by
the available redundancy — the expectation of ``1 - P_mem_fail`` over
the inter-die distribution (Eq. 1, generalised from the paper's
three-region decomposition to the full integral).
"""

from __future__ import annotations

from typing import Callable

from repro.observability.metrics import incr
from repro.stats.distributions import NormalDistribution
from repro.stats.integration import expect_over_corners
from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution


def _checked(
    pass_probability: Callable[[ProcessCorner], float], scope: str
) -> Callable[[ProcessCorner], float]:
    """Wrap a quadrature integrand with estimator-health accounting.

    Purely observational — the value passes through untouched (no
    clamping, so yields are bit-identical with telemetry on or off),
    but every evaluation is counted and any value outside the [0, 1]
    probability range is flagged (``yield.out_of_range``): an
    out-of-range integrand means an upstream estimator, not the
    quadrature, has gone wrong.
    """

    def integrand(corner: ProcessCorner) -> float:
        value = pass_probability(corner)
        incr(f"{scope}.evaluations")
        if not 0.0 <= value <= 1.0:
            incr(f"{scope}.out_of_range")
        return value

    return integrand


def leakage_yield(
    distribution: InterDieDistribution,
    array_leakage_at: Callable[[ProcessCorner], NormalDistribution],
    l_max: float,
    order: int = 15,
) -> float:
    """Fraction of dies with total leakage below ``l_max`` [A].

    Args:
        distribution: inter-die Vt distribution.
        array_leakage_at: per-corner CLT Gaussian of the array leakage
            (after whatever repair scheme is being evaluated).
        l_max: the maximum allowed memory leakage [A].
        order: quadrature order.
    """
    if l_max <= 0:
        raise ValueError(f"l_max must be positive, got {l_max}")

    def pass_probability(corner: ProcessCorner) -> float:
        return float(array_leakage_at(corner).cdf(l_max))

    return expect_over_corners(
        distribution, _checked(pass_probability, "yield.leakage"), order
    )


def parametric_yield_from_pfail(
    distribution: InterDieDistribution,
    memory_fail_at: Callable[[ProcessCorner], float],
    order: int = 15,
) -> float:
    """Fraction of dies whose memory survives repair (paper Eq. 1)."""

    def pass_probability(corner: ProcessCorner) -> float:
        return 1.0 - float(memory_fail_at(corner))

    return expect_over_corners(
        distribution, _checked(pass_probability, "yield.parametric"), order
    )
