"""Quasi-Monte-Carlo sampling of the cell variation space.

For *smooth* statistics of the cell population (mean leakage, margin
moments — the inputs to the CLT array model and the monitor
calibration) a scrambled Sobol sequence converges like ~1/N instead of
the 1/sqrt(N) of independent sampling, cutting the sample budget for a
given accuracy by an order of magnitude.

For *failure probabilities* the integrand is an indicator (not smooth),
so the QMC advantage shrinks; the importance sampler in
:mod:`repro.stats.sampling` remains the right tool there.  The
convergence comparison lives in ``tests/test_qmc.py``.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sp_stats
from scipy.stats import qmc

from repro.sram.cell import TRANSISTORS, CellGeometry, cell_sigma_vt
from repro.technology.parameters import TechnologyParameters


def sobol_cell_dvt(
    tech: TechnologyParameters,
    geometry: CellGeometry,
    size: int,
    seed: int = 0,
    scramble: bool = True,
) -> dict[str, np.ndarray]:
    """Draw ``size`` cells' Vt deltas from a scrambled Sobol sequence.

    The six transistor deltas are one 6-dimensional low-discrepancy
    point set mapped through the Gaussian inverse CDF with the Pelgrom
    sigmas.  ``size`` is rounded up to the next power of two internally
    (Sobol balance) and truncated back, which preserves most of the
    discrepancy advantage.

    Returns the same structure as
    :func:`repro.sram.cell.sample_cell_dvt`.
    """
    if size < 1:
        raise ValueError(f"size must be positive, got {size}")
    sigmas = cell_sigma_vt(tech, geometry)
    sampler = qmc.Sobol(d=len(TRANSISTORS), scramble=scramble, seed=seed)
    m = int(np.ceil(np.log2(size)))
    points = sampler.random_base2(m)[:size]
    # Keep strictly inside (0, 1) for the inverse CDF.
    eps = 1e-12
    points = np.clip(points, eps, 1.0 - eps)
    normals = sp_stats.norm.ppf(points)
    return {
        name: normals[:, i] * sigmas[name]
        for i, name in enumerate(TRANSISTORS)
    }
