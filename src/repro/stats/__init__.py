"""Statistical machinery: Monte Carlo, importance sampling, CLT, yield.

Everything here is deliberately generic — the failure analyzer and the
leakage-spread experiments are thin users of these primitives:

* :mod:`repro.stats.montecarlo` — seeded, batched Monte-Carlo driving;
* :mod:`repro.stats.sampling` — sigma-scaled Gaussian importance
  sampling for rare failure events;
* :mod:`repro.stats.rare_event` — adaptive rare-event strategies
  (pilot-tuned scaling, MPFP-seeded mean-shift IS, statistical
  blockade) behind the analyzer's ``sampler=`` knob;
* :mod:`repro.stats.distributions` — lognormal cell-leakage fits and the
  central-limit aggregation to array leakage (paper Eq. 2);
* :mod:`repro.stats.integration` — Gauss-Hermite expectation over the
  inter-die distribution;
* :mod:`repro.stats.yield_model` — leakage yield (paper Eqs. 3-4) and
  parametric yield (paper Eq. 1).
"""

from repro.stats.distributions import (
    array_leakage_distribution,
    lognormal_fit,
    normal_cdf,
)
from repro.stats.integration import expect_over_corners
from repro.stats.montecarlo import (
    MonteCarloResult,
    probability_of,
    weighted_quantile,
)
from repro.stats.qmc import sobol_cell_dvt
from repro.stats.rare_event import (
    SAMPLER_NAMES,
    AdaptiveIsSampler,
    BlockadeSampler,
    GaussianMixture,
    PlainSampler,
    RareEventSample,
    ScaledSampler,
    balance_heuristic_weights,
    make_sampler,
    per_stage_weights,
    tuned_scale,
)
from repro.stats.sampling import ImportanceSample, importance_sample_dvt
from repro.stats.yield_model import leakage_yield, parametric_yield_from_pfail

__all__ = [
    "probability_of",
    "MonteCarloResult",
    "weighted_quantile",
    "sobol_cell_dvt",
    "ImportanceSample",
    "importance_sample_dvt",
    "SAMPLER_NAMES",
    "AdaptiveIsSampler",
    "BlockadeSampler",
    "GaussianMixture",
    "PlainSampler",
    "RareEventSample",
    "ScaledSampler",
    "balance_heuristic_weights",
    "make_sampler",
    "per_stage_weights",
    "tuned_scale",
    "lognormal_fit",
    "normal_cdf",
    "array_leakage_distribution",
    "expect_over_corners",
    "leakage_yield",
    "parametric_yield_from_pfail",
]
