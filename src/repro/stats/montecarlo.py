"""Plain Monte-Carlo estimation helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.diagnostics import (
    DEFAULT_Z,
    weight_diagnostics,
    wilson_interval,
)
from repro.observability.metrics import incr


@dataclass(frozen=True)
class MonteCarloResult:
    """A probability estimate with its sampling uncertainty.

    Attributes:
        estimate: the point estimate.
        stderr: standard error of the estimate.
        n_samples: samples used.
        ess: effective sample size behind the estimate — ``n_samples``
            for plain MC, the Kish ESS for weighted (importance-
            sampled) estimates; ``None`` on results built before the
            diagnostics layer (old pickles, hand-made instances).
        ci_low / ci_high: 95% Wilson confidence bounds on the
            probability, evaluated at the effective sample size so a
            degenerate weight vector yields the honest ``[0, 1]``.
        max_weight_fraction: largest single weight's share of the
            total (``1 / n`` for plain MC; near 1.0 flags an estimate
            dominated by one importance sample).
    """

    estimate: float
    stderr: float
    n_samples: int
    ess: float | None = None
    ci_low: float | None = None
    ci_high: float | None = None
    max_weight_fraction: float | None = None

    @property
    def relative_error(self) -> float:
        """stderr / estimate (inf when the estimate is zero)."""
        if self.estimate == 0.0:
            return float("inf")
        return self.stderr / self.estimate

    @property
    def ci_halfwidth(self) -> float | None:
        """Half the 95% CI span (``None`` when no CI was attached)."""
        if self.ci_low is None or self.ci_high is None:
            return None
        return 0.5 * (self.ci_high - self.ci_low)

    @property
    def ess_ratio(self) -> float | None:
        """``ess / n_samples`` (1.0 = plain MC; ``None`` when unknown)."""
        if self.ess is None or self.n_samples == 0:
            return None
        return self.ess / self.n_samples

    def within(self, other: "MonteCarloResult", n_sigma: float = 3.0) -> bool:
        """True when two estimates agree within combined n-sigma error."""
        combined = np.hypot(self.stderr, other.stderr)
        return abs(self.estimate - other.estimate) <= n_sigma * combined

    @classmethod
    def from_binomial(
        cls, successes: float, n: int, z: float = DEFAULT_Z
    ) -> "MonteCarloResult":
        """An exact-count binomial estimate with Wilson CI attached.

        For probabilities observed as a plain count over ``n`` trials
        (e.g. a lot's shipped-die yield) without going through
        :func:`probability_of` — no telemetry counters are touched.
        ``n = 0`` is well-defined: estimate 0, ESS 0, CI ``[0, 1]``.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return cls(0.0, float("inf"), 0, ess=0.0, ci_low=0.0, ci_high=1.0)
        p = float(successes) / n
        low, high = wilson_interval(float(successes), float(n), z)
        stderr = float(np.sqrt(max(p * (1.0 - p), 0.0) / n))
        return cls(
            p,
            stderr,
            n,
            ess=float(n),
            ci_low=low,
            ci_high=high,
            max_weight_fraction=1.0 / n,
        )


def probability_of(
    indicator: np.ndarray, weights: np.ndarray | None = None
) -> MonteCarloResult:
    """Estimate P(indicator) from boolean samples, optionally weighted.

    With ``weights`` this is the self-normalised importance-sampling
    estimator ``sum(w * 1) / n`` where the weights are true likelihood
    ratios (mean weight ~ 1), and the standard error is that of the
    weighted mean.

    Every result carries estimator-health diagnostics: a 95% Wilson
    interval evaluated at the effective sample size (so a collapsed
    weight vector honestly reports ``[0, 1]``), the ESS itself, and the
    max-weight fraction — see :mod:`repro.observability.diagnostics`.
    """
    indicator = np.asarray(indicator, dtype=bool)
    n = indicator.size
    if n == 0:
        raise ValueError("cannot estimate a probability from zero samples")
    incr("mc.estimates")
    incr("mc.samples", n)
    if weights is None:
        k = float(np.count_nonzero(indicator))
        p = k / n
        stderr = float(np.sqrt(max(p * (1.0 - p), 0.0) / n))
        low, high = wilson_interval(k, float(n))
        return MonteCarloResult(
            p,
            stderr,
            n,
            ess=float(n),
            ci_low=low,
            ci_high=high,
            max_weight_fraction=1.0 / n,
        )
    weights = np.asarray(weights, dtype=float)
    if weights.shape != indicator.shape:
        raise ValueError("weights must match the indicator shape")
    values = weights * indicator
    p = float(np.mean(values))
    stderr = float(np.std(values, ddof=1) / np.sqrt(n)) if n > 1 else float("inf")
    health = weight_diagnostics(weights)
    # The Wilson interval at n_eff = ESS: the weighted estimator carries
    # the information of ~ESS unweighted samples, so this stays inside
    # [0, 1], widens honestly as the weights degenerate, and collapses
    # to the uninformative [0, 1] when every weight is zero.
    low, high = wilson_interval(
        min(max(p, 0.0), 1.0) * health.ess, health.ess
    )
    return MonteCarloResult(
        p,
        stderr,
        n,
        ess=health.ess,
        ci_low=low,
        ci_high=high,
        max_weight_fraction=health.max_weight_fraction,
    )


def weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float
) -> float:
    """Quantile of a weighted sample (importance-sampled distributions).

    Sorts ``values`` and returns the first value whose normalised
    cumulative weight reaches ``q``.  With likelihood-ratio weights this
    estimates the target-distribution quantile from proposal samples —
    how the criteria calibration resolves 1e-6-deep tails from ~1e5
    samples.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if values.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    order = np.argsort(values)
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1]
    if not total > 0.0:
        raise ValueError(
            "weighted_quantile needs a positive total weight; got "
            f"{total!r} (all-zero or negative weight batches carry no "
            "distributional information)"
        )
    cumulative /= total
    index = int(np.searchsorted(cumulative, q))
    index = min(index, values.size - 1)
    return float(values[order][index])
