"""Plain Monte-Carlo estimation helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.metrics import incr


@dataclass(frozen=True)
class MonteCarloResult:
    """A probability estimate with its sampling uncertainty.

    Attributes:
        estimate: the point estimate.
        stderr: standard error of the estimate.
        n_samples: samples used.
    """

    estimate: float
    stderr: float
    n_samples: int

    @property
    def relative_error(self) -> float:
        """stderr / estimate (inf when the estimate is zero)."""
        if self.estimate == 0.0:
            return float("inf")
        return self.stderr / self.estimate

    def within(self, other: "MonteCarloResult", n_sigma: float = 3.0) -> bool:
        """True when two estimates agree within combined n-sigma error."""
        combined = np.hypot(self.stderr, other.stderr)
        return abs(self.estimate - other.estimate) <= n_sigma * combined


def probability_of(
    indicator: np.ndarray, weights: np.ndarray | None = None
) -> MonteCarloResult:
    """Estimate P(indicator) from boolean samples, optionally weighted.

    With ``weights`` this is the self-normalised importance-sampling
    estimator ``sum(w * 1) / n`` where the weights are true likelihood
    ratios (mean weight ~ 1), and the standard error is that of the
    weighted mean.
    """
    indicator = np.asarray(indicator, dtype=bool)
    n = indicator.size
    if n == 0:
        raise ValueError("cannot estimate a probability from zero samples")
    incr("mc.estimates")
    incr("mc.samples", n)
    if weights is None:
        p = float(np.mean(indicator))
        stderr = float(np.sqrt(max(p * (1.0 - p), 0.0) / n))
        return MonteCarloResult(p, stderr, n)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != indicator.shape:
        raise ValueError("weights must match the indicator shape")
    values = weights * indicator
    p = float(np.mean(values))
    stderr = float(np.std(values, ddof=1) / np.sqrt(n)) if n > 1 else float("inf")
    return MonteCarloResult(p, stderr, n)


def weighted_quantile(
    values: np.ndarray, weights: np.ndarray, q: float
) -> float:
    """Quantile of a weighted sample (importance-sampled distributions).

    Sorts ``values`` and returns the first value whose normalised
    cumulative weight reaches ``q``.  With likelihood-ratio weights this
    estimates the target-distribution quantile from proposal samples —
    how the criteria calibration resolves 1e-6-deep tails from ~1e5
    samples.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if values.size == 0:
        raise ValueError("cannot take a quantile of an empty sample")
    order = np.argsort(values)
    cumulative = np.cumsum(weights[order])
    cumulative /= cumulative[-1]
    index = int(np.searchsorted(cumulative, q))
    index = min(index, values.size - 1)
    return float(values[order][index])
