"""Expectations over the inter-die distribution (paper Eqs. 1, 4).

Yields are expectations of per-corner quantities over the Gaussian
inter-die Vt distribution.  Gauss-Hermite quadrature needs only ~15
corner evaluations for smooth integrands, versus thousands of sampled
dies — the difference between seconds and hours for the sigma-sweep
figures.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.technology.corners import ProcessCorner
from repro.technology.variation import InterDieDistribution


def expect_over_corners(
    distribution: InterDieDistribution,
    per_corner: Callable[[ProcessCorner], float],
    order: int = 15,
) -> float:
    """E[per_corner(Vt_inter)] by Gauss-Hermite quadrature.

    Args:
        distribution: the inter-die Vt distribution.
        per_corner: maps a corner to a scalar (e.g. 1 - P_mem_fail).
        order: quadrature order (nodes).
    """
    if distribution.sigma == 0.0:
        return float(per_corner(ProcessCorner(distribution.mean)))
    shifts, probabilities = distribution.quadrature(order)
    values = np.array([per_corner(ProcessCorner(float(s))) for s in shifts])
    return float(np.dot(probabilities, values))


def expect_series_over_corners(
    distribution: InterDieDistribution,
    per_corner: Callable[[ProcessCorner], np.ndarray],
    order: int = 15,
) -> np.ndarray:
    """Vector-valued version of :func:`expect_over_corners`."""
    if distribution.sigma == 0.0:
        return np.asarray(per_corner(ProcessCorner(distribution.mean)), dtype=float)
    shifts, probabilities = distribution.quadrature(order)
    values = np.stack(
        [np.asarray(per_corner(ProcessCorner(float(s))), dtype=float) for s in shifts]
    )
    return np.tensordot(probabilities, values, axes=(0, 0))


def dense_expectation(
    distribution: InterDieDistribution,
    per_corner: Callable[[ProcessCorner], float],
    span_sigmas: float = 4.0,
    n_points: int = 81,
) -> float:
    """E[per_corner(Vt_inter)] on a dense trapezoid grid.

    Gauss-Hermite assumes a smooth integrand; post-silicon *policies*
    (three-level body bias, DAC-quantised source bias) are piecewise
    constant in the corner, which defeats spectral accuracy.  A dense
    trapezoid over +/- ``span_sigmas`` handles the discontinuities at
    the cost of more (cheap, usually cached/interpolated) corner
    evaluations.
    """
    if distribution.sigma == 0.0:
        return float(per_corner(ProcessCorner(distribution.mean)))
    if n_points < 3:
        raise ValueError(f"n_points must be >= 3, got {n_points}")
    shifts = distribution.mean + distribution.sigma * np.linspace(
        -span_sigmas, span_sigmas, n_points
    )
    density = distribution.pdf(shifts)
    weights = density / np.trapezoid(density, shifts)
    values = np.array([per_corner(ProcessCorner(float(s))) for s in shifts])
    return float(np.trapezoid(weights * values, shifts))
