"""Adaptive rare-event sampling strategies (MPFP-seeded IS, blockade).

The fixed sigma-scaled proposal in :mod:`repro.stats.sampling` spends
most of its budget far from any failure boundary: at ``scale = 2`` in
the cell's 6-dimensional Vt space the Kish effective-sample-size
fraction is ``(s^2 / sqrt(2 s^2 - 1))^-6 ~ 0.08``, and resolving a
1e-6-deep tail still needs tens of thousands of solver calls per
estimate.  This module supplies the strategy layer behind the
``sampler=`` knob of :class:`repro.failures.analysis.CellFailureAnalyzer`:

* :class:`PlainSampler` — unweighted Monte Carlo (the reference);
* :class:`ScaledSampler` — the sigma-inflated proposal, optionally
  auto-tuning its scale from a pilot batch instead of the historical
  hard-coded 2.0;
* :class:`AdaptiveIsSampler` — MPFP-seeded mean-shift importance
  sampling: a pilot batch explores, per-mechanism shift vectors come
  from the most-probable-failure points (FORM) and/or a cross-entropy
  update on the weighted failure indicator, and the main batch draws
  from a defensive Gaussian mixture centred on those shifts;
* :class:`BlockadeSampler` — statistical blockade: a linear margin
  model fit on the pilot filters the main draws so the expensive
  solvers only run on tail-region candidates, with a conservative
  unblocking threshold keeping the estimator's bias negligible.

Every sampler works on an abstract :class:`FailureProblem` (margins in
normalised z-space, ``z_i = dVt_i / sigma_i``), stays deterministic
given its :class:`~numpy.random.SeedSequence`, and returns likelihood-
ratio weights whose mean is ~1, so the existing
:func:`repro.stats.montecarlo.probability_of` estimator — Wilson CI at
the Kish ESS included — applies unchanged.

Multi-stage estimates use *per-stage weighting*: a stage's samples
carry ``phi(z) / q_s(z)`` against their own proposal, so a pooled mean
is the budget-weighted convex combination of per-stage unbiased
estimates.  This matters because the later proposals are *adapted
from* the pilot — reweighting the pilot rows by a mixture that was
aimed at their own failure points (the balance heuristic of Owen &
Zhou) systematically down-weights exactly those rows and biases the
estimate low.  With per-stage weights the adaptation enters only
through the later proposal, which is a fixed function of the pilot,
and conditional unbiasedness telescopes.  Stages that share one fixed
proposal (the blockade) still use the balance heuristic, where it is
exactly the per-stage weighting anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
from scipy import stats as sp_stats

from repro.observability.diagnostics import weight_diagnostics
from repro.observability.metrics import incr, observe, set_gauge

#: Strategy names accepted by ``sampler=`` knobs and the CLI.
SAMPLER_NAMES = ("plain", "scaled", "adaptive-is", "blockade")

#: Bounds on any auto-tuned sigma inflation.
_SCALE_MIN, _SCALE_MAX = 1.05, 3.0

#: Exploration inflation used by pilot batches when nothing better is
#: known (the historical fixed proposal).
_EXPLORE_SCALE = 2.0

_LOG_2PI = float(np.log(2.0 * np.pi))


def tuned_scale(target_probability: float, dims: int) -> float:
    """The sigma inflation matched to a tail of depth ``target_probability``.

    An isotropic proposal ``N(0, s^2 I)`` puts its typical sample at
    radius ``s * sqrt(dims)``; aiming that at the tail depth
    ``beta = Phi^-1(1 - p)`` gives ``s = beta / sqrt(dims)``.  For the
    6-dimensional cell at the ~4e-4 union target this lands near 1.37
    (ESS fraction ~0.48) where the historical hard-coded 2.0 sits at
    ~0.08.  Clipped to ``[1.05, 3.0]`` so degenerate targets still
    yield a usable proposal.
    """
    if dims < 1:
        raise ValueError(f"dims must be >= 1, got {dims}")
    p = float(np.clip(target_probability, 1e-12, 0.5))
    beta = float(sp_stats.norm.isf(p))
    return float(np.clip(beta / np.sqrt(dims), _SCALE_MIN, _SCALE_MAX))


class FailureProblem(Protocol):
    """What a sampler needs to know about one failure estimation task.

    Margins are *continuous* per-mechanism pass/fail distances in
    normalised z-space: negative means the mechanism fails.  A margins
    call is the expensive operation (it runs the circuit solvers), so
    samplers budget it in whole batches.
    """

    @property
    def dims(self) -> int:
        """Dimensionality of the z-space."""

    @property
    def mechanisms(self) -> tuple[str, ...]:
        """Mechanism names, in reporting order."""

    def margins(self, z: np.ndarray) -> dict[str, np.ndarray]:
        """Continuous margins for a (n, dims) z batch; negative = fail."""

    def direction_seeds(self) -> dict[str, np.ndarray]:
        """Known failure directions (e.g. MPFP z-vectors) per mechanism.

        May be empty or partial; samplers fall back to cross-entropy
        shifts learned from the pilot batch for missing mechanisms.
        """


@dataclass(frozen=True)
class GaussianMixture:
    """An isotropic Gaussian mixture proposal in z-space.

    Components are ``alphas[k] * N(means[k], scales[k]^2 I)``; the
    standard normal (the *nominal* distribution of z) is the special
    case of a single zero-mean unit-scale component.
    """

    means: np.ndarray  # (k, d)
    scales: np.ndarray  # (k,)
    alphas: np.ndarray  # (k,)

    def __post_init__(self) -> None:
        means = np.atleast_2d(np.asarray(self.means, dtype=float))
        scales = np.atleast_1d(np.asarray(self.scales, dtype=float))
        alphas = np.atleast_1d(np.asarray(self.alphas, dtype=float))
        if means.shape[0] != scales.size or scales.size != alphas.size:
            raise ValueError("means, scales and alphas must align")
        if np.any(scales <= 0):
            raise ValueError("component scales must be positive")
        if np.any(alphas <= 0) or not np.isclose(alphas.sum(), 1.0):
            raise ValueError("alphas must be positive and sum to 1")
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "scales", scales)
        object.__setattr__(self, "alphas", alphas / alphas.sum())

    @classmethod
    def centered(cls, dims: int, scale: float = 1.0) -> "GaussianMixture":
        """A single zero-mean component (plain or sigma-scaled)."""
        return cls(
            means=np.zeros((1, dims)),
            scales=np.array([scale]),
            alphas=np.array([1.0]),
        )

    @property
    def dims(self) -> int:
        return self.means.shape[1]

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw an (n, dims) batch."""
        k = self.alphas.size
        choices = rng.choice(k, size=n, p=self.alphas)
        z = rng.standard_normal((n, self.dims))
        z *= self.scales[choices, None]
        z += self.means[choices]
        return z

    def logpdf(self, z: np.ndarray) -> np.ndarray:
        """Log density of each row of ``z`` under the mixture."""
        z = np.atleast_2d(z)
        d = self.dims
        parts = np.empty((self.alphas.size, z.shape[0]))
        for k in range(self.alphas.size):
            delta = z - self.means[k]
            q = np.einsum("ij,ij->i", delta, delta) / (self.scales[k] ** 2)
            parts[k] = (
                np.log(self.alphas[k])
                - 0.5 * d * _LOG_2PI
                - d * np.log(self.scales[k])
                - 0.5 * q
            )
        top = parts.max(axis=0)
        return top + np.log(np.exp(parts - top).sum(axis=0))


def standard_normal_logpdf(z: np.ndarray) -> np.ndarray:
    """Log density of the nominal N(0, I) distribution."""
    z = np.atleast_2d(z)
    return -0.5 * z.shape[1] * _LOG_2PI - 0.5 * np.einsum(
        "ij,ij->i", z, z
    )


def balance_heuristic_weights(
    stages: list[tuple[GaussianMixture, np.ndarray]],
) -> np.ndarray:
    """Likelihood-ratio weights for samples pooled across proposals.

    ``stages`` is a list of ``(proposal, z_batch)`` pairs.  Every
    pooled sample is weighted as if drawn from the *deterministic
    mixture* of all stage proposals (each weighted by its share of the
    pooled budget), which is the balance heuristic of multiple
    importance sampling: unbiased for the pooled mean, and the weight
    of any sample is bounded by the most-covering proposal that could
    have produced it.
    """
    sizes = [z.shape[0] for _, z in stages]
    total = sum(sizes)
    if total == 0:
        raise ValueError("cannot weight an empty sample pool")
    z_all = np.vstack([z for _, z in stages])
    log_fractions = np.log(np.array(sizes, dtype=float) / total)
    log_q = np.empty((len(stages), total))
    for s, (proposal, _) in enumerate(stages):
        log_q[s] = log_fractions[s] + proposal.logpdf(z_all)
    top = log_q.max(axis=0)
    log_mix = top + np.log(np.exp(log_q - top).sum(axis=0))
    return np.exp(standard_normal_logpdf(z_all) - log_mix)


def per_stage_weights(
    stages: list[tuple[GaussianMixture, np.ndarray]],
) -> np.ndarray:
    """Likelihood-ratio weights with each stage against its own proposal.

    The pooled mean ``(1/N) sum(w * f)`` is then the budget-weighted
    convex combination of per-stage unbiased estimates.  Unlike the
    balance heuristic this stays unbiased when later proposals were
    *adapted from* earlier stages' samples: each stage's weights never
    reference a density that depends on that stage's own draws.
    """
    if not stages or all(z.shape[0] == 0 for _, z in stages):
        raise ValueError("cannot weight an empty sample pool")
    return np.concatenate(
        [
            np.exp(standard_normal_logpdf(z) - proposal.logpdf(z))
            for proposal, z in stages
        ]
    )


@dataclass(frozen=True)
class RareEventSample:
    """One sampler run: pooled indicators, weights, and its true cost.

    Attributes:
        weights: likelihood ratios vs the nominal distribution, one per
            drawn sample (``mean ~ 1``).
        fails: per-mechanism boolean indicators plus the ``"any"``
            union, aligned with ``weights``.
        n_drawn: samples drawn from the proposals.
        n_solved: samples the expensive margins were evaluated on —
            the honest solver-call cost (< ``n_drawn`` only for the
            blockade, where blocked samples are scored pass unsolved).
        info: sampler-reported telemetry (e.g. the tuned scale), also
            exported as ``sampler.*`` gauges.
    """

    weights: np.ndarray
    fails: dict[str, np.ndarray]
    n_drawn: int
    n_solved: int
    info: dict[str, float] = field(default_factory=dict)


def _pilot_size(budget: int) -> int:
    """Pilot allocation: enough to learn from, never most of the budget."""
    return max(min(budget // 3, 2048), min(64, budget))


def _fails_from_margins(
    margins: dict[str, np.ndarray], mechanisms: tuple[str, ...]
) -> dict[str, np.ndarray]:
    fails = {name: margins[name] < 0.0 for name in mechanisms}
    any_fail = np.zeros_like(next(iter(fails.values())), dtype=bool)
    for indicator in fails.values():
        any_fail |= indicator
    fails["any"] = any_fail
    return fails


def _pool_margins(
    parts: list[dict[str, np.ndarray]], mechanisms: tuple[str, ...]
) -> dict[str, np.ndarray]:
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in mechanisms
    }


def _record_telemetry(sample: RareEventSample, sampler_name: str) -> None:
    """Mirror the sampling-kernel telemetry for strategy-drawn batches."""
    incr("sampling.draws")
    incr("sampling.cells", sample.n_drawn)
    health = weight_diagnostics(sample.weights)
    observe("sampling.ess_fraction", health.ess_ratio)
    observe("sampling.max_weight_fraction", health.max_weight_fraction)
    for key, value in sample.info.items():
        set_gauge(f"sampler.{key}", value)


class PlainSampler:
    """Unweighted Monte Carlo — the reference the others are tested against."""

    name = "plain"

    def sample(
        self,
        problem: FailureProblem,
        seed: np.random.SeedSequence,
        budget: int,
    ) -> RareEventSample:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = np.random.default_rng(seed)
        z = rng.standard_normal((budget, problem.dims))
        fails = _fails_from_margins(problem.margins(z), problem.mechanisms)
        sample = RareEventSample(
            weights=np.ones(budget),
            fails=fails,
            n_drawn=budget,
            n_solved=budget,
        )
        _record_telemetry(sample, self.name)
        return sample


class ScaledSampler:
    """Sigma-inflated proposal, optionally pilot-tuned.

    With a fixed ``scale`` this reproduces the historical estimator.
    With ``scale=None`` a pilot batch at the exploration inflation
    estimates the union failure probability, :func:`tuned_scale` maps
    it to the matched inflation, and the main batch redraws there; the
    two stages are pooled with per-stage weights (see
    :func:`per_stage_weights`) so the pilot's solver calls still
    contribute to the estimate without the adapted-proposal bias.
    """

    name = "scaled"

    def __init__(self, scale: float | None = None) -> None:
        if scale is not None and scale < 1.0:
            raise ValueError(f"scale must be >= 1, got {scale}")
        self.scale = scale

    def sample(
        self,
        problem: FailureProblem,
        seed: np.random.SeedSequence,
        budget: int,
    ) -> RareEventSample:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = np.random.default_rng(seed)
        d = problem.dims
        if self.scale is not None:
            proposal = GaussianMixture.centered(d, self.scale)
            z = proposal.sample(rng, budget)
            margins = problem.margins(z)
            sample = RareEventSample(
                weights=balance_heuristic_weights([(proposal, z)]),
                fails=_fails_from_margins(margins, problem.mechanisms),
                n_drawn=budget,
                n_solved=budget,
                info={"scale": self.scale},
            )
            _record_telemetry(sample, self.name)
            return sample
        n_pilot = _pilot_size(budget)
        explore = GaussianMixture.centered(d, _EXPLORE_SCALE)
        z_pilot = explore.sample(rng, n_pilot)
        pilot_margins = problem.margins(z_pilot)
        pilot_fails = _fails_from_margins(pilot_margins, problem.mechanisms)
        w_pilot = np.exp(
            standard_normal_logpdf(z_pilot) - explore.logpdf(z_pilot)
        )
        p_hat = float(np.mean(w_pilot * pilot_fails["any"]))
        scale = (
            tuned_scale(p_hat, d) if p_hat > 0.0 else _EXPLORE_SCALE
        )
        n_main = budget - n_pilot
        stages = [(explore, z_pilot)]
        margin_parts = [pilot_margins]
        if n_main > 0:
            main = GaussianMixture.centered(d, scale)
            z_main = main.sample(rng, n_main)
            margin_parts.append(problem.margins(z_main))
            stages.append((main, z_main))
        pooled = _pool_margins(margin_parts, problem.mechanisms)
        sample = RareEventSample(
            weights=per_stage_weights(stages),
            fails=_fails_from_margins(pooled, problem.mechanisms),
            n_drawn=budget,
            n_solved=budget,
            info={"tuned_scale": scale, "pilot_p_any": p_hat},
        )
        _record_telemetry(sample, self.name)
        return sample


class AdaptiveIsSampler:
    """MPFP-seeded mean-shift IS with a cross-entropy pilot update.

    Stage 1 (pilot) draws from the exploration inflation and solves.
    Per-mechanism shift vectors are then assembled: the cross-entropy
    update ``mu_k = sum(W z 1{fail_k}) / sum(W 1{fail_k})`` over the
    pilot (W = likelihood ratio to nominal) where the pilot saw
    failures, else the problem's MPFP seed for that mechanism.  Stage 2
    (main) draws from a defensive mixture — one unit-scale component
    per shift plus a broad zero-mean component whose inflation is tuned
    to the pilot's union estimate — and both stages are pooled with
    per-stage weights: the mixture is a fixed function of the pilot, so
    conditional unbiasedness holds stage by stage, and the pilot rows
    double as ballast against the occasional heavy main-stage weight.
    The defensive component bounds every main-stage weight, so the ESS
    cannot collapse even when a shift is off-target.
    """

    name = "adaptive-is"

    def __init__(
        self,
        explore_scale: float | None = _EXPLORE_SCALE,
        defensive_alpha: float = 0.3,
        min_component_norm: float = 0.3,
        min_hits: int = 3,
    ) -> None:
        self.explore_scale = (
            explore_scale if explore_scale is not None else _EXPLORE_SCALE
        )
        if not 0.0 < defensive_alpha < 1.0:
            raise ValueError("defensive_alpha must be in (0, 1)")
        self.defensive_alpha = defensive_alpha
        self.min_component_norm = min_component_norm
        self.min_hits = min_hits

    def _shift_components(
        self,
        problem: FailureProblem,
        z_pilot: np.ndarray,
        pilot_fails: dict[str, np.ndarray],
        w_pilot: np.ndarray,
    ) -> list[np.ndarray]:
        """One shift vector per mechanism: cross-entropy, else MPFP."""
        seeds = problem.direction_seeds()
        components: list[np.ndarray] = []
        for mechanism in problem.mechanisms:
            fail = pilot_fails[mechanism]
            mu = None
            if int(fail.sum()) >= self.min_hits:
                mass = float(np.sum(w_pilot[fail]))
                if mass > 0.0:
                    mu = (
                        np.sum(w_pilot[fail, None] * z_pilot[fail], axis=0)
                        / mass
                    )
            if mu is None:
                seed_z = seeds.get(mechanism)
                if seed_z is not None:
                    mu = np.asarray(seed_z, dtype=float)
            if mu is None or not np.all(np.isfinite(mu)):
                continue
            if float(np.linalg.norm(mu)) < self.min_component_norm:
                continue
            components.append(mu)
        return components

    def sample(
        self,
        problem: FailureProblem,
        seed: np.random.SeedSequence,
        budget: int,
    ) -> RareEventSample:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = np.random.default_rng(seed)
        d = problem.dims
        n_pilot = _pilot_size(budget)
        explore = GaussianMixture.centered(d, self.explore_scale)
        z_pilot = explore.sample(rng, n_pilot)
        pilot_margins = problem.margins(z_pilot)
        pilot_fails = _fails_from_margins(pilot_margins, problem.mechanisms)
        w_pilot = np.exp(
            standard_normal_logpdf(z_pilot) - explore.logpdf(z_pilot)
        )
        p_hat = float(np.mean(w_pilot * pilot_fails["any"]))
        defensive_scale = (
            tuned_scale(p_hat, d) if p_hat > 0.0 else self.explore_scale
        )
        components = self._shift_components(
            problem, z_pilot, pilot_fails, w_pilot
        )
        n_main = budget - n_pilot
        stages = [(explore, z_pilot)]
        margin_parts = [pilot_margins]
        if n_main > 0:
            if components:
                k = len(components)
                shared = (1.0 - self.defensive_alpha) / k
                mixture = GaussianMixture(
                    means=np.vstack([np.zeros(d)] + components),
                    scales=np.array([defensive_scale] + [1.0] * k),
                    alphas=np.array(
                        [self.defensive_alpha] + [shared] * k
                    ),
                )
            else:
                # No failure information at all: stay exploratory.
                mixture = GaussianMixture.centered(d, defensive_scale)
            z_main = mixture.sample(rng, n_main)
            margin_parts.append(problem.margins(z_main))
            stages.append((mixture, z_main))
        pooled = _pool_margins(margin_parts, problem.mechanisms)
        sample = RareEventSample(
            weights=per_stage_weights(stages),
            fails=_fails_from_margins(pooled, problem.mechanisms),
            n_drawn=budget,
            n_solved=budget,
            info={
                "defensive_scale": defensive_scale,
                "shift_components": float(len(components)),
                "pilot_p_any": p_hat,
            },
        )
        _record_telemetry(sample, self.name)
        return sample


class BlockadeSampler:
    """Statistical blockade: classify cheap, solve only the tail.

    A linear margin model per mechanism (least squares on the solved
    pilot) predicts each main-stage draw's margins; only *candidates* —
    draws whose predicted margin for any mechanism falls below
    ``gamma`` residual standard deviations — are solved.  Blocked draws
    are scored as passing with their weight retained, so the estimate
    stays on the same weight normalisation; the conservative threshold
    makes the unaccounted mass ``E[w * 1{fail and blocked}]``
    negligible against the estimator's own standard error (the margin
    surfaces are near-linear over the sampled region, so a true failure
    more than ``gamma`` sigmas above its predicted margin is vanishingly
    rare).  Because draws are nearly free, the main stage oversamples
    by the predicted blocking rate: the *solver* budget, not the draw
    count, is what ``budget`` caps.
    """

    name = "blockade"

    def __init__(
        self,
        scale: float | None = None,
        gamma: float = 3.0,
        max_expansion: float = 20.0,
    ) -> None:
        if scale is not None and scale < 1.0:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {gamma}")
        self.scale = scale
        self.gamma = gamma
        self.max_expansion = max_expansion

    def sample(
        self,
        problem: FailureProblem,
        seed: np.random.SeedSequence,
        budget: int,
    ) -> RareEventSample:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = np.random.default_rng(seed)
        d = problem.dims
        scale = self.scale if self.scale is not None else _EXPLORE_SCALE
        proposal = GaussianMixture.centered(d, scale)
        n_pilot = _pilot_size(budget)
        z_pilot = proposal.sample(rng, n_pilot)
        pilot_margins = problem.margins(z_pilot)
        solve_budget = budget - n_pilot
        if solve_budget <= 0 or n_pilot <= d + 2:
            sample = RareEventSample(
                weights=balance_heuristic_weights([(proposal, z_pilot)]),
                fails=_fails_from_margins(
                    pilot_margins, problem.mechanisms
                ),
                n_drawn=n_pilot,
                n_solved=n_pilot,
                info={"blockade_solve_fraction": 1.0},
            )
            _record_telemetry(sample, self.name)
            return sample
        # Linear margin models on the pilot: margin ~ c + b . z.
        design = np.hstack([np.ones((n_pilot, 1)), z_pilot])
        models: dict[str, tuple[np.ndarray, float]] = {}
        for mechanism in problem.mechanisms:
            y = pilot_margins[mechanism]
            finite = np.isfinite(y)
            y_fit = np.where(finite, y, np.nanmax(np.where(finite, y, np.nan)))
            coef, *_ = np.linalg.lstsq(design, y_fit, rcond=None)
            residual = y_fit - design @ coef
            spread = float(np.std(y_fit))
            sigma_r = max(float(np.std(residual)), 0.05 * spread, 1e-12)
            models[mechanism] = (coef, sigma_r)

        def candidates(z: np.ndarray) -> np.ndarray:
            mask = np.zeros(z.shape[0], dtype=bool)
            block_design = np.hstack([np.ones((z.shape[0], 1)), z])
            for coef, sigma_r in models.values():
                mask |= (block_design @ coef) < self.gamma * sigma_r
            return mask

        pilot_rate = float(np.mean(candidates(z_pilot)))
        expansion = min(1.0 / max(pilot_rate, 0.05), self.max_expansion)
        n_draw = int(np.ceil(solve_budget * expansion))
        z_main = proposal.sample(rng, n_draw)
        mask = candidates(z_main)
        solved = int(mask.sum())
        main_margins = {
            # Blocked samples score a safely positive margin (pass).
            name: np.full(n_draw, 1.0)
            for name in problem.mechanisms
        }
        if solved:
            solved_margins = problem.margins(z_main[mask])
            for name in problem.mechanisms:
                main_margins[name][mask] = solved_margins[name]
        pooled = _pool_margins(
            [pilot_margins, main_margins], problem.mechanisms
        )
        stages = [(proposal, z_pilot), (proposal, z_main)]
        n_drawn = n_pilot + n_draw
        sample = RareEventSample(
            weights=balance_heuristic_weights(stages),
            fails=_fails_from_margins(pooled, problem.mechanisms),
            n_drawn=n_drawn,
            n_solved=n_pilot + solved,
            info={
                "blockade_solve_fraction": (n_pilot + solved) / n_drawn,
                "blockade_gamma": self.gamma,
                "scale": scale,
            },
        )
        _record_telemetry(sample, self.name)
        return sample


def make_sampler(name: str, scale: float | None = None):
    """Instantiate the strategy behind a ``sampler=`` knob value.

    ``scale`` carries the knob's inflation setting: the fixed proposal
    width for ``scaled``/``blockade`` (None = auto-tune / default), the
    exploration width for ``adaptive-is``, and is ignored by ``plain``.
    """
    if name == "plain":
        return PlainSampler()
    if name == "scaled":
        return ScaledSampler(scale)
    if name == "adaptive-is":
        return AdaptiveIsSampler(explore_scale=scale)
    if name == "blockade":
        return BlockadeSampler(scale=scale)
    raise ValueError(
        f"unknown sampler {name!r}; known: {', '.join(SAMPLER_NAMES)}"
    )
