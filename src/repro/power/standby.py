"""Standby power under source bias (paper Figs. 9b, 10a).

In source-biased standby the array sits at the standby supply with the
cell source line raised to VSB; the standby power is the supply rail
voltage times the total leakage drawn through the cells.  Raising VSB
cuts the leakage through three compounding mechanisms (body effect,
DIBL, and the negative V_GS of the access path), which is why the
adaptive scheme's per-die maximum VSB directly minimises standby power.
"""

from __future__ import annotations

import numpy as np

from repro.sram.cell import CellGeometry, SixTCell, sample_cell_dvt
from repro.sram.leakage import cell_leakage
from repro.sram.metrics import OperatingConditions
from repro.stats.distributions import NormalDistribution, array_leakage_distribution
from repro.technology.corners import ProcessCorner
from repro.technology.parameters import TechnologyParameters


def standby_power_per_cell(
    cell: SixTCell, conditions: OperatingConditions
) -> np.ndarray:
    """Standby power [W] of each cell in the population.

    The supply is ``conditions.vdd_standby`` and the source line sits at
    ``conditions.vsb``.
    """
    leakage = cell_leakage(
        cell,
        vdd=conditions.vdd_standby,
        vbody_n=conditions.vbody_n,
        vsb=conditions.vsb,
    ).total
    return conditions.vdd_standby * leakage


def die_standby_power(
    tech: TechnologyParameters,
    geometry: CellGeometry,
    corner: ProcessCorner,
    n_cells: int,
    conditions: OperatingConditions,
    n_samples: int = 20_000,
    rng: np.random.Generator | None = None,
) -> NormalDistribution:
    """CLT Gaussian of a die's total standby power [W].

    Estimated from ``n_samples`` Monte-Carlo cells at the die's corner
    and scaled to ``n_cells`` (paper Eq. 2 applied to power).
    """
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    rng = rng if rng is not None else np.random.default_rng(5)
    dvt = sample_cell_dvt(tech, geometry, rng, n_samples)
    population = SixTCell(tech, geometry, corner, dvt)
    per_cell = standby_power_per_cell(population, conditions)
    return array_leakage_distribution(per_cell, n_cells)
