"""Standby power models for the source-biasing experiments."""

from repro.power.standby import (
    die_standby_power,
    standby_power_per_cell,
)

__all__ = ["standby_power_per_cell", "die_standby_power"]
